"""The reusable invariant library of the conformance matrix.

Each invariant is a pure function ``CellRun -> InvariantResult`` checking
one facet of the extraction contract (paper §2/Figure 2 plus the system
guarantees added by the pipeline and API layers):

``offer-validity``
    Every emitted flex-offer and fleet aggregate passes the §3.1 policy
    checks (:mod:`repro.flexoffer.validate`), with production-level offers
    allowed their negative-energy sign convention; ids are unique.
``energy-conservation``
    For conservative approaches, per-household ``|extracted − removed|``
    stays within tolerance and the offer profile midpoints account for
    exactly the reported extracted energy.
``aggregate-roundtrip``
    Aggregation partitions the offers exactly, and every aggregate's
    schedules (min/max energy at earliest start, midpoint at latest start)
    disaggregate into feasible member schedules that reproduce the
    aggregate's per-interval energy — the N-to-1 contract of paper [4].
``batched-equals-sequential``
    The batched :class:`~repro.pipeline.FleetPipeline` result is *exactly*
    the sequential reference loop's — offer ids included (deterministic
    per-household id scopes).
``engine-fidelity``
    For approaches with a pluggable matching engine, the vectorized engine
    reproduces the reference engine's offers within float round-off.
``scheduling-feasibility``
    The schedule stage (greedy placement of the fleet aggregates) and a
    stochastic-improvement pass over it respect every offer's time window
    and slice bounds, partition the aggregates, and never regress cost —
    zone by zone on zoned cells.
``zone-partition``
    Zoned cells only: every aggregate is scheduled in exactly one zone,
    in the zone the assignment policy (explicit household mapping,
    hash-shard fallback) routes it to — or, on market-cleared cells, the
    zone its clearing outcome placed it in — and each zone's demand plan
    conserves its placements' energy.
``market-clearing``
    Market-cleared cells only: the auction settles every cleared bid at
    its slice's uniform price (budget balance), never charges a bid more
    than it bid (individual rationality), and never rejects a bid as
    priced-out while accepting a cheaper one in the same zone and slice
    (merit-order consistency).
``grouping-monotonicity``
    Coarsening the grouping grid is monotone: doubling the (start,
    flexibility) tolerances — 1x, 2x, 4x — never increases the number of
    groups the cell's offers aggregate into.
``report-roundtrip``
    The cell's output survives the RunSpec→RunReport JSON wire format
    losslessly and deterministically.
``committed-placement-stability``
    A mini rolling-horizon session over the cell's first two households
    never moves a committed placement: once a placement falls inside the
    commit horizon, every later replan reproduces it bitwise, both in the
    committed ledger and in the combined schedule.
``crash-recovery-equivalence``
    The durability contract: a journaled mini-session killed at an event
    boundary and recovered via :class:`~repro.session.SessionJournal`
    (latest snapshot + WAL tail) finishes the remaining events in a state
    bitwise identical to the uninterrupted run's final snapshot.
``replan-no-worse-realized``
    The uncertainty contract of the robust-scheduling subsystem: a
    mini-session that committed its early placements and then learns the
    *realized* series (a deterministic perturbation of the cell's target)
    never does worse by re-planning the open window against it — the
    re-planned schedule's realized imbalance is at most the stale
    schedule's, committed placements frozen in both.
``fleet-monotonicity``
    Metamorphic: doubling the cell's (mini) fleet — every household
    cloned with fresh ids but the *same* extraction rng seeds — never
    shrinks the total energy the extract→group→aggregate chain emits.
    More flexibility in can never mean less flexibility out.
``disaggregation-fairness``
    Across schedule→disaggregate probes of the cell's multi-member
    aggregates, no member is systematically starved: every member's
    allocated energy share stays above a floor proportional to its
    capacity share, and the spread of allocation/capacity ratios stays
    under a pinned Gini bound.

Invariants never raise on contract violations — they return them as
messages — so one broken cell cannot hide the rest of the matrix.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ReproError
from repro.flexoffer.model import FlexOffer
from repro.flexoffer.schedule import default_schedule
from repro.flexoffer.validate import PolicyLimits, check_all

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.registry import ExtractorEntry
    from repro.conformance.matrix import ConformanceScenario
    from repro.extraction.base import FlexibilityExtractor
    from repro.pipeline.fleet import FleetResult
    from repro.simulation.dataset import SimulatedDataset

#: Registry levels whose approaches do not remove energy from the input
#: (the random baseline invents offers; production offers describe a
#: forecast, they do not modify it).
NON_CONSERVATIVE_LEVELS: frozenset[str] = frozenset({"baseline", "production"})

#: Absolute per-household tolerance on |extracted − removed| (kWh).
CONSERVATION_TOLERANCE_KWH = 1e-6

#: Schedule probes of the aggregate round-trip: (energy level, start kind).
_ROUNDTRIP_PROBES: tuple[tuple[float, str], ...] = (
    (0.0, "earliest"),
    (1.0, "earliest"),
    (0.5, "latest"),
)

#: Schedule probes of the disaggregation-fairness check.  Deliberately
#: excludes the all-minimum probe (level 0.0): at minimum energy every
#: member legitimately receives only its own floor, which says nothing
#: about how *discretionary* energy is shared.
_FAIRNESS_PROBES: tuple[tuple[float, str], ...] = (
    (0.5, "earliest"),
    (1.0, "earliest"),
    (0.5, "latest"),
)

#: Fairness floor: each member must receive at least this fraction of its
#: capacity-proportional share of the energy actually allocated.
FAIRNESS_MIN_SHARE = 0.2

#: Fairness spread bound on the members' allocation/capacity ratios.
#: 0.0 is perfectly proportional sharing; the slack admits the slack-
#: proportional remainder rule's legitimate tilt toward flexible members.
FAIRNESS_GINI_BOUND = 0.5

#: How many multi-member aggregates the fairness check probes per cell
#: (bounds invariant cost on offer-heavy cells; aggregates are probed in
#: deterministic report order).
FAIRNESS_MAX_AGGREGATES = 6


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant on one cell."""

    name: str
    status: str  # "pass" | "fail" | "skipped"
    violations: tuple[str, ...] = ()
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in ("pass", "fail", "skipped"):
            raise ValueError(f"bad invariant status {self.status!r}")
        object.__setattr__(self, "violations", tuple(self.violations))

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "violations": list(self.violations),
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InvariantResult":
        return cls(
            name=data["name"],
            status=data["status"],
            violations=tuple(data.get("violations", ())),
            detail=data.get("detail", ""),
        )


def _passed(name: str, detail: str = "") -> InvariantResult:
    return InvariantResult(name=name, status="pass", detail=detail)


def _skipped(name: str, detail: str) -> InvariantResult:
    return InvariantResult(name=name, status="skipped", detail=detail)


def _outcome(name: str, violations: list[str], detail: str = "") -> InvariantResult:
    if violations:
        return InvariantResult(
            name=name, status="fail", violations=tuple(violations), detail=detail
        )
    return _passed(name, detail)


@dataclass(frozen=True)
class CellRun:
    """Everything the invariants may inspect about one executed cell."""

    scenario: "ConformanceScenario"
    entry: "ExtractorEntry"
    fleet: "SimulatedDataset"
    result: "FleetResult"
    #: The sequential-loop rerun, or ``None`` for per-household approaches
    #: (which have no single shared pipeline extractor to compare against).
    sequential: "FleetResult | None"
    #: The schedule-stage target the cell actually ran against (a
    #: ``TimeSeries``, or a ``ZonedTarget`` on zoned scenarios) — carried
    #: here so invariants validate against the very policy that scheduled,
    #: never a recomputation that could drift from it.
    target: Any = None
    #: Build a fresh extractor of this cell's approach, with overrides
    #: (used by the engine-fidelity invariant to flip ``engine``).
    make_extractor: Callable[..., "FlexibilityExtractor"] = field(repr=False, default=None)


# ---------------------------------------------------------------------- #
# Invariants
# ---------------------------------------------------------------------- #


def check_offer_validity(run: CellRun) -> InvariantResult:
    """Policy validity of every offer and every fleet aggregate."""
    offers = list(run.result.offers)
    if run.entry.level == "production":
        limits = PolicyLimits(min_total_energy=float("-inf"))
    else:
        limits = PolicyLimits()
    violations = list(check_all(offers, limits))
    # Aggregates: profile lengths may exceed one day (members embed at
    # offsets) and production aggregates stay sign-flipped.
    aggregate_limits = PolicyLimits(max_slices=None, min_total_energy=float("-inf"))
    seen: set[str] = {o.offer_id for o in offers}
    for aggregate in run.result.aggregates:
        violations.extend(aggregate_limits.check(aggregate.offer))
        if aggregate.offer.offer_id in seen:
            violations.append(f"duplicate aggregate id: {aggregate.offer.offer_id}")
        seen.add(aggregate.offer.offer_id)
    return _outcome(
        "offer-validity",
        violations,
        detail=f"{len(offers)} offers, {len(run.result.aggregates)} aggregates",
    )


def check_energy_conservation(run: CellRun) -> InvariantResult:
    """Extracted offer energy equals the energy removed from the input."""
    if run.entry.level in NON_CONSERVATIVE_LEVELS:
        return _skipped(
            "energy-conservation",
            f"{run.entry.level}-level approaches do not remove input energy",
        )
    violations: list[str] = []
    for household in run.result.households:
        error = household.summary.get("conservation_error_kwh")
        if error is None:
            violations.append(
                f"{household.household_id}: summary lacks conservation_error_kwh"
            )
        elif error > CONSERVATION_TOLERANCE_KWH:
            violations.append(
                f"{household.household_id}: conservation error {error:.3e} kWh "
                f"exceeds {CONSERVATION_TOLERANCE_KWH:.0e}"
            )
    midpoint_total = float(
        sum(s.midpoint for offer in run.result.offers for s in offer.slices)
    )
    reported_total = float(
        sum(h.summary.get("extracted_kwh", 0.0) for h in run.result.households)
    )
    if abs(midpoint_total - reported_total) > CONSERVATION_TOLERANCE_KWH * max(
        1.0, abs(reported_total)
    ):
        violations.append(
            f"offer midpoints sum to {midpoint_total:.6f} kWh but households "
            f"report {reported_total:.6f} kWh extracted"
        )
    return _outcome(
        "energy-conservation",
        violations,
        detail=f"fleet extracted {reported_total:.3f} kWh",
    )


def _roundtrip_one(aggregate, level: float, start_kind: str) -> list[str]:
    """One schedule probe of one aggregate; returns violation messages."""
    offer = aggregate.offer
    start = offer.earliest_start if start_kind == "earliest" else offer.latest_start
    label = f"{offer.offer_id} (level={level}, start={start_kind})"
    try:
        schedule = default_schedule(offer, start=start, level=level)
        parts = _disaggregate(aggregate, schedule)
    except ReproError as exc:
        return [f"{label}: round-trip raised {type(exc).__name__}: {exc}"]
    if len(parts) != len(aggregate.members):
        return [f"{label}: {len(parts)} member schedules for {len(aggregate.members)} members"]
    target = schedule.interval_energies()
    reconstructed = np.zeros_like(target)
    for part, offset in zip(parts, aggregate.member_offsets):
        energies = part.interval_energies()
        reconstructed[offset : offset + len(energies)] += energies
    if not np.allclose(reconstructed, target, rtol=1e-9, atol=1e-9):
        worst = float(np.max(np.abs(reconstructed - target)))
        return [f"{label}: member energies miss the aggregate schedule by {worst:.3e} kWh"]
    return []


def _disaggregate(aggregate, schedule):
    from repro.aggregation.aggregate import disaggregate_schedule

    return disaggregate_schedule(aggregate, schedule)


def check_aggregate_roundtrip(run: CellRun) -> InvariantResult:
    """Aggregation partitions the offers and disaggregation is lossless."""
    violations: list[str] = []
    offers = list(run.result.offers)
    member_ids = [m.offer_id for a in run.result.aggregates for m in a.members]
    if sorted(member_ids) != sorted(o.offer_id for o in offers):
        violations.append(
            f"aggregates carry {len(member_ids)} members for {len(offers)} offers "
            f"(partition broken)"
        )
    for aggregate in run.result.aggregates:
        for level, start_kind in _ROUNDTRIP_PROBES:
            violations.extend(_roundtrip_one(aggregate, level, start_kind))
    return _outcome(
        "aggregate-roundtrip",
        violations,
        detail=f"{len(run.result.aggregates)} aggregates x {len(_ROUNDTRIP_PROBES)} probes",
    )


def check_batched_equals_sequential(run: CellRun) -> InvariantResult:
    """The batched pipeline reproduces the sequential loop exactly."""
    from repro.pipeline.fleet import results_identical

    if run.sequential is None:
        return _skipped(
            "batched-equals-sequential",
            "per-household extractor parameters; no shared pipeline extractor",
        )
    violations: list[str] = []
    if not results_identical(run.result, run.sequential):
        batched, sequential = run.result, run.sequential
        if len(batched.offers) != len(sequential.offers):
            violations.append(
                f"offer counts differ: batched {len(batched.offers)} vs "
                f"sequential {len(sequential.offers)}"
            )
        else:
            for index, (a, b) in enumerate(zip(batched.offers, sequential.offers)):
                if a != b:
                    violations.append(
                        f"offer {index} differs: {a.offer_id} vs {b.offer_id}"
                    )
                    break
            else:
                violations.append("aggregates or household summaries differ")
    return _outcome(
        "batched-equals-sequential",
        violations,
        detail="exact equality, offer ids included",
    )


def check_engine_fidelity(run: CellRun) -> InvariantResult:
    """The vectorized matching engine matches the reference engine."""
    import dataclasses

    from repro.api.registry import input_series_for
    from repro.pipeline.bench import FIDELITY_RTOL
    from repro.pipeline.fleet import offers_equivalent

    if "matching" not in {f.name for f in dataclasses.fields(run.entry.cls)}:
        return _skipped(
            "engine-fidelity", "approach has no pluggable matching engine"
        )
    from repro.pipeline.fleet import stamp_household

    trace = run.fleet.traces[0]
    reference = run.make_extractor(engine="reference")
    series = input_series_for(reference, trace)
    rng = np.random.default_rng(run.scenario.seed)  # household 0's stream
    # The pipeline stamps household identity onto ownerless offers; the
    # bare re-extraction here must be stamped the same way to compare.
    reference_offers = list(
        stamp_household(
            reference.extract(series, rng).offers, trace.config.household_id
        )
    )
    vectorized_offers: list[FlexOffer] = list(run.result.households[0].offers)
    violations: list[str] = []
    if not offers_equivalent(vectorized_offers, reference_offers, rtol=FIDELITY_RTOL):
        violations.append(
            f"household 0: vectorized engine emitted {len(vectorized_offers)} "
            f"offers, reference engine {len(reference_offers)}; profiles differ "
            f"beyond rtol={FIDELITY_RTOL:g}"
        )
    return _outcome(
        "engine-fidelity",
        violations,
        detail=f"household 0, rtol={FIDELITY_RTOL:g}",
    )


def _schedule_violations(label: str, result) -> list[str]:
    """Bounds/partition checks on one scheduling run (shared by probes)."""
    violations: list[str] = []
    tolerance = 1e-9
    demand = np.zeros_like(result.demand.values)
    axis = result.demand.axis
    for schedule in result.schedules:
        offer = schedule.offer
        prefix = f"{label}: {offer.offer_id}"
        if not offer.earliest_start <= schedule.start <= offer.latest_start:
            violations.append(
                f"{prefix} starts at {schedule.start} outside "
                f"[{offer.earliest_start}, {offer.latest_start}]"
            )
        if (schedule.start - offer.earliest_start) % offer.resolution:
            violations.append(
                f"{prefix} start {schedule.start} is off the offer's grid"
            )
        for i, (energy, sl) in enumerate(zip(schedule.slice_energies, offer.slices)):
            if not sl.energy_min - tolerance <= energy <= sl.energy_max + tolerance:
                violations.append(
                    f"{prefix} slice {i} energy {energy} outside "
                    f"[{sl.energy_min}, {sl.energy_max}]"
                )
        tmin, tmax = offer.effective_total_bounds()
        if not tmin - tolerance <= schedule.total_energy <= tmax + tolerance:
            violations.append(
                f"{prefix} total {schedule.total_energy} outside [{tmin}, {tmax}]"
            )
        first = axis.index_of(schedule.start)
        energies = schedule.interval_energies()
        demand[first : first + len(energies)] += energies
    if not np.allclose(demand, result.demand.values, rtol=1e-9, atol=1e-9):
        worst = float(np.max(np.abs(demand - result.demand.values)))
        violations.append(
            f"{label}: demand plan misses the summed placements by {worst:.3e} kWh"
        )
    return violations


def check_scheduling_feasibility(run: CellRun) -> InvariantResult:
    """Greedy and stochastic scheduler output respects every offer's bounds.

    The cell's schedule stage (greedy placement of the fleet aggregates on
    the scenario target) and a stochastic-improvement pass over it must
    both produce placements inside each offer's time window and slice
    energy bounds and partition the aggregates into placed + unplaced; the
    stochastic pass must never cost more than its input.  (Greedy cost may
    legitimately exceed the do-nothing baseline: every offer's minimum
    energy must run somewhere, even when the target is already soaked up.)
    Zoned cells are checked zone by zone — each zone is its own
    independent scheduling run.
    """
    from repro.scheduling.stochastic import improve_schedule
    from repro.scheduling.zones import ZonedScheduleResult

    schedule = run.result.schedule
    if schedule is None:
        return _skipped(
            "scheduling-feasibility", "cell ran without a schedule stage"
        )
    violations: list[str] = []
    scheduled_ids = sorted(
        [s.offer.offer_id for s in schedule.schedules]
        + [o.offer_id for o in schedule.unplaced]
    )
    aggregate_ids = sorted(a.offer.offer_id for a in run.result.aggregates)
    if scheduled_ids != aggregate_ids:
        violations.append(
            f"schedule covers {len(scheduled_ids)} aggregates of "
            f"{len(aggregate_ids)} (partition broken)"
        )
    if isinstance(schedule, ZonedScheduleResult):
        parts = [
            (f"[{zone.name}]", result)
            for zone, result in zip(schedule.zones, schedule.results)
        ]
    else:
        parts = [("", schedule)]
    for suffix, part in parts:
        violations.extend(_schedule_violations(f"greedy{suffix}", part))
        try:
            improved = improve_schedule(
                part, np.random.default_rng(run.scenario.seed), iterations=60
            )
        except ReproError as exc:
            violations.append(
                f"stochastic improver{suffix} raised {type(exc).__name__}: {exc}"
            )
        else:
            violations.extend(_schedule_violations(f"stochastic{suffix}", improved))
            if improved.cost > part.cost + 1e-9:
                violations.append(
                    f"stochastic{suffix} cost {improved.cost:.6f} worse than "
                    f"its input {part.cost:.6f}"
                )
    return _outcome(
        "scheduling-feasibility",
        violations,
        detail=(
            f"{len(schedule.schedules)} placed, {len(schedule.unplaced)} "
            f"unplaced, improvement {schedule.improvement:.1%}"
        ),
    )


def check_zone_partition(run: CellRun) -> InvariantResult:
    """Zoned cells: every aggregate lands in exactly one zone, energy intact.

    Three facets of the zone-sharded schedule stage:

    * **partition** — the union of per-zone placed + unplaced offers is
      exactly the fleet's aggregates, with no offer in two zones;
    * **policy** — each aggregate sits in the zone the assignment policy
      (explicit household mapping, hash-shard fallback) of the cell's own
      zoned target routes it to; on market-cleared cells the clearing
      outcome is the routing authority instead (spilled bids legitimately
      land in an adjacent zone, rejected bids stay home as unplaced), but
      every bid's *home* zone must still match the assignment policy;
    * **per-zone energy conservation** — each zone's demand plan carries
      exactly the energy of the placements it claims (≤ 1e-6 kWh off).
    """
    from repro.scheduling.zones import ZonedScheduleResult, ZonedTarget, assign_zone

    schedule = run.result.schedule
    if not isinstance(schedule, ZonedScheduleResult):
        return _skipped("zone-partition", "cell ran without a zoned schedule stage")
    if not isinstance(run.target, ZonedTarget):
        return InvariantResult(
            name="zone-partition",
            status="fail",
            violations=(
                "cell produced a zoned schedule but carries no ZonedTarget "
                "to validate its routing against",
            ),
        )
    violations: list[str] = []
    per_zone_ids = [
        [s.offer.offer_id for s in result.schedules]
        + [o.offer_id for o in result.unplaced]
        for result in schedule.results
    ]
    flat = [offer_id for ids in per_zone_ids for offer_id in ids]
    if len(flat) != len(set(flat)):
        doubled = sorted({i for i in flat if flat.count(i) > 1})
        violations.append(f"offer(s) scheduled in more than one zone: {doubled}")
    aggregate_ids = sorted(a.offer.offer_id for a in run.result.aggregates)
    if sorted(flat) != aggregate_ids:
        violations.append(
            f"zones cover {len(flat)} offers of {len(aggregate_ids)} "
            f"aggregates (partition broken)"
        )
    zoned = run.target
    routed = schedule.assignment()
    outcomes = schedule.clearing.by_offer() if schedule.clearing is not None else None
    for aggregate in run.result.aggregates:
        offer_id = aggregate.offer.offer_id
        policy_zone = assign_zone(aggregate, zoned)
        expected = policy_zone
        if outcomes is not None:
            outcome = outcomes.get(offer_id)
            if outcome is None:
                violations.append(f"{offer_id}: missing from the clearing result")
                continue
            if outcome.home_zone != policy_zone:
                violations.append(
                    f"{offer_id}: clearing home zone {outcome.home_zone!r}, "
                    f"policy routes it to {policy_zone!r}"
                )
            # Cleared bids are scheduled where they cleared (possibly an
            # adjacent zone via spill); rejected bids stay home, unplaced.
            expected = outcome.zone if outcome.cleared else outcome.home_zone
        actual = routed.get(offer_id)
        if actual != expected:
            violations.append(
                f"{offer_id}: scheduled in zone {actual!r}, "
                f"policy routes it to {expected!r}"
            )
    for zone, result in zip(schedule.zones, schedule.results):
        placed = float(sum(s.total_energy for s in result.schedules))
        planned = float(result.demand.values.sum())
        if abs(placed - planned) > CONSERVATION_TOLERANCE_KWH * max(1.0, abs(placed)):
            violations.append(
                f"zone {zone.name}: demand plan carries {planned:.6f} kWh for "
                f"{placed:.6f} kWh of placements"
            )
    return _outcome(
        "zone-partition",
        violations,
        detail=(
            f"{len(schedule.zones)} zones, "
            f"{len(schedule.schedules)} placed offers"
        ),
    )


def check_market_clearing(run: CellRun) -> InvariantResult:
    """Market-cleared cells: the auction is a well-formed uniform-price one.

    Three economic facets of the clearing result:

    * **budget balance** — in every (zone, market slice), the payments of
      the cleared bids equal the slice's uniform price times its cleared
      quantity, so consumer payments and producer revenue are the same
      money;
    * **individual rationality** — no cleared bid pays more per kWh than
      its bid price (the uniform price sits at or below every accepted
      bid, first pass and spill pass alike);
    * **merit-order consistency** — within one (zone, slice), a bid the
      auction rejected as ``"priced-out"`` never bids strictly more than
      a locally accepted bid (migrated arrivals are excluded: the spill
      pass runs after, and under, the local merit order).
    """
    from repro.scheduling.zones import ZonedScheduleResult

    schedule = run.result.schedule
    if (
        not isinstance(schedule, ZonedScheduleResult)
        or schedule.clearing is None
    ):
        return _skipped("market-clearing", "cell ran without market clearing")
    clearing = schedule.clearing
    violations: list[str] = []
    rtol = 1e-9
    for zone in clearing.zones:
        slice_payments: dict[int, float] = {}
        local_accept_min: dict[int, float] = {}
        priced_out_max: dict[int, float] = {}
        for outcome in zone.outcomes:
            if outcome.cleared and outcome.quantity_kwh > 0.0:
                slice_payments[outcome.slice_index] = (
                    slice_payments.get(outcome.slice_index, 0.0)
                    + outcome.payment_eur
                )
                bid_value = outcome.price * outcome.quantity_kwh
                if outcome.payment_eur > bid_value * (1.0 + rtol) + 1e-12:
                    violations.append(
                        f"{outcome.offer_id}: pays {outcome.payment_eur:.9f} EUR "
                        f"for a bid worth {bid_value:.9f} EUR "
                        f"(individual rationality broken)"
                    )
                if not outcome.migrated:
                    current = local_accept_min.get(outcome.slice_index)
                    if current is None or outcome.price < current:
                        local_accept_min[outcome.slice_index] = outcome.price
            elif outcome.status == "rejected" and outcome.reason == "priced-out":
                current = priced_out_max.get(outcome.slice_index)
                if current is None or outcome.price > current:
                    priced_out_max[outcome.slice_index] = outcome.price
        for index, price in enumerate(zone.slice_prices):
            paid = slice_payments.get(index, 0.0)
            expected = price * zone.cleared_kwh[index]
            if abs(paid - expected) > rtol * max(1.0, abs(expected)):
                violations.append(
                    f"zone {zone.zone} slice {index}: {paid:.9f} EUR paid for "
                    f"{expected:.9f} EUR of cleared energy (budget broken)"
                )
        for index, rejected_price in priced_out_max.items():
            accepted_price = local_accept_min.get(index)
            if accepted_price is not None and rejected_price > accepted_price:
                violations.append(
                    f"zone {zone.zone} slice {index}: priced-out bid at "
                    f"{rejected_price:.9f} EUR/kWh outbids an accepted one at "
                    f"{accepted_price:.9f} (merit order broken)"
                )
    return _outcome(
        "market-clearing",
        violations,
        detail=(
            f"{len(clearing.outcomes)} bids, "
            f"{len(clearing.accepted) + len(clearing.partial)} cleared, "
            f"welfare {clearing.welfare_eur:.4f} EUR"
        ),
    )


def check_grouping_monotonicity(run: CellRun) -> InvariantResult:
    """Coarsening the grouping grid never increases the group count.

    The grid partitions offers by ``floor(delta / tolerance)`` buckets on
    (earliest start, time flexibility), so doubling both tolerances can
    only merge cells, and the ``max_group_size`` splitter obeys
    ``ceil((a+b)/M) <= ceil(a/M) + ceil(b/M)`` — the number of groups must
    therefore be non-increasing along a 1x → 2x → 4x tolerance ladder.
    This is the contract that makes the grouping grid a *compression knob*:
    turning it coarser trades flexibility for fewer aggregates, never both
    ways at once.
    """
    from repro.aggregation.grouping import GroupingParams, group_offers

    offers = list(run.result.offers)
    if not offers:
        return _skipped("grouping-monotonicity", "cell produced no offers")
    base = GroupingParams()
    counts: list[int] = []
    for scale in (1, 2, 4):
        params = GroupingParams(
            start_tolerance=base.start_tolerance * scale,
            flexibility_tolerance=base.flexibility_tolerance * scale,
            max_group_size=base.max_group_size,
        )
        counts.append(len(group_offers(offers, params)))
    violations: list[str] = []
    for (scale_a, count_a), (scale_b, count_b) in zip(
        zip((1, 2), counts), zip((2, 4), counts[1:])
    ):
        if count_b > count_a:
            violations.append(
                f"{scale_b}x tolerances produce {count_b} groups, more than "
                f"the {count_a} at {scale_a}x (coarsening must not split)"
            )
    return _outcome(
        "grouping-monotonicity",
        violations,
        detail=f"1x/2x/4x grid -> {counts[0]}/{counts[1]}/{counts[2]} groups",
    )


def check_report_roundtrip(run: CellRun) -> InvariantResult:
    """The cell's full output survives the JSON wire format losslessly."""
    from repro.api.service import ExtractorRunReport, RunReport
    from repro.api.spec import ExtractorSpec, RunSpec, ScenarioSpec

    cell_report = ExtractorRunReport(
        extractor=run.entry.name,
        households=len(run.fleet.traces),
        offers=tuple(run.result.offers),
        aggregates=run.result.aggregates,
        stage_seconds=run.result.timings.seconds,
        summary={
            "offers": float(len(run.result.offers)),
            "aggregates": float(len(run.result.aggregates)),
            "extracted_kwh": run.result.total_extracted_kwh,
        },
        schedule=run.result.schedule,
    )
    spec = RunSpec(
        kind="fleet",
        name=f"conformance:{run.scenario.name}",
        scenario=ScenarioSpec(
            households=len(run.fleet.traces),
            days=run.fleet.days,
            seed=run.scenario.seed,
            start=run.fleet.start,
        ),
        extractors=(ExtractorSpec(run.entry.name),),
    )
    report = RunReport(spec=spec, results=(cell_report,))
    violations: list[str] = []
    try:
        text = report.to_json()
        reloaded = RunReport.from_json(text)
        if reloaded.to_json() != text:
            violations.append("serialise→parse→serialise is not a fixed point")
        if reloaded.to_dict() != report.to_dict():
            violations.append("round-tripped report differs from the original")
        if json.loads(text)["version"] != report.version:
            violations.append("wire format lost the report version")
    except ReproError as exc:
        violations.append(f"round-trip raised {type(exc).__name__}: {exc}")
    return _outcome(
        "report-roundtrip",
        violations,
        detail=f"{len(cell_report.offers)} offers through the wire format",
    )


def check_committed_placement_stability(run: CellRun) -> InvariantResult:
    """Committed placements survive later replans bitwise.

    Drives a deliberately small :class:`~repro.session.FlexibilitySession`
    — the cell's approach over its first two households, two ingest halves
    with a replan after each, and a six-hour commit horizon — and checks
    that every placement committed at the first replan reappears
    *unchanged* in the second replan's committed ledger and in its
    combined schedule.  This is the session subsystem's dispatch contract:
    a placement inside the commit horizon has already been sent out and
    must never be re-planned.
    """
    from datetime import timedelta

    from repro.session import FlexibilitySession
    from repro.timeseries.series import TimeSeries

    if run.result.schedule is None:
        return _skipped(
            "committed-placement-stability", "cell ran without a schedule stage"
        )
    if not isinstance(run.target, TimeSeries):
        return _skipped(
            "committed-placement-stability",
            "sessions re-plan plain targets only; zoned markets keep the "
            "one-shot pipeline",
        )
    if run.entry.name in run.scenario.per_household_params:
        return _skipped(
            "committed-placement-stability",
            "per-household extractor parameters; no shared session extractor",
        )
    traces = run.fleet.traces[:2]
    session = FlexibilitySession.for_fleet(
        traces,
        extractor=run.make_extractor(),
        seed=run.scenario.seed,
        target=run.target,
        commit_horizon=timedelta(hours=6),
    )
    from repro.api.registry import input_series_for

    inputs = [input_series_for(session.extractor, trace) for trace in traces]
    half = inputs[0].axis.length // 2
    violations: list[str] = []
    try:
        for index, series in enumerate(inputs):
            session.ingest(index, 0, series.values[:half])
        first = session.replan()
        for index, series in enumerate(inputs):
            session.ingest(index, half, series.values[half:])
        second = session.replan()
    except ReproError as exc:
        return _outcome(
            "committed-placement-stability",
            [f"mini-session raised {type(exc).__name__}: {exc}"],
        )
    later_committed = {s.offer.offer_id: s for s in second.committed}
    later_planned = (
        {}
        if second.schedule is None
        else {s.offer.offer_id: s for s in second.schedule.schedules}
    )
    for placement in first.committed:
        offer_id = placement.offer.offer_id
        if later_committed.get(offer_id) != placement:
            violations.append(
                f"{offer_id}: committed placement changed between replans"
            )
        if later_planned.get(offer_id) != placement:
            violations.append(
                f"{offer_id}: committed placement missing from (or moved in) "
                f"the later combined schedule"
            )
    return _outcome(
        "committed-placement-stability",
        violations,
        detail=(
            f"{len(first.committed)} committed at replan 1, "
            f"{len(second.committed)} at replan 2"
        ),
    )


def check_crash_recovery_equivalence(run: CellRun) -> InvariantResult:
    """Kill + resume at an event boundary reproduces the uninterrupted run.

    Drives the same mini-session shape as ``committed-placement-stability``
    (first two households, two ingest halves with a replan after each,
    six-hour commit horizon, plus a closing explicit commit) three ways:
    uninterrupted in memory, journaled into a WAL with a snapshot per
    replan, and — for two crash boundaries — journaled only up to the
    boundary, recovered via snapshot + WAL tail, and finished.  The
    boundaries are chosen so recovery exercises both tail shapes: an
    ``ingest`` record after the snapshot (k=4) and a ``commit`` record
    after it (k=7, the full log).  Every recovered run's final snapshot
    must be bitwise the uninterrupted one.
    """
    import tempfile
    from datetime import timedelta

    from repro.session import FlexibilitySession, SessionJournal, restore_session
    from repro.timeseries.series import TimeSeries

    name = "crash-recovery-equivalence"
    if run.result.schedule is None:
        return _skipped(name, "cell ran without a schedule stage")
    if not isinstance(run.target, TimeSeries):
        return _skipped(
            name,
            "sessions re-plan plain targets only; zoned markets keep the "
            "one-shot pipeline",
        )
    if run.entry.name in run.scenario.per_household_params:
        return _skipped(
            name, "per-household extractor parameters; no shared session extractor"
        )
    traces = run.fleet.traces[:2]

    def fresh_session() -> FlexibilitySession:
        return FlexibilitySession.for_fleet(
            traces,
            extractor=run.make_extractor(),
            seed=run.scenario.seed,
            target=run.target,
            commit_horizon=timedelta(hours=6),
        )

    from repro.api.registry import input_series_for

    probe = fresh_session()
    inputs = [input_series_for(probe.extractor, trace) for trace in traces]
    half = inputs[0].axis.length // 2
    events: list[tuple] = [
        ("ingest", 0, 0, inputs[0].values[:half]),
        ("ingest", 1, 0, inputs[1].values[:half]),
        ("replan",),
        ("ingest", 0, half, inputs[0].values[half:]),
        ("ingest", 1, half, inputs[1].values[half:]),
        ("replan",),
    ]

    def apply(session: FlexibilitySession, tail: list[tuple]) -> None:
        for event in tail:
            if event[0] == "ingest":
                session.ingest(event[1], event[2], event[3])
            elif event[0] == "replan":
                session.replan()
            else:
                session.commit(event[1])

    violations: list[str] = []
    try:
        baseline = probe
        apply(baseline, events)
        events.append(("commit", baseline.state.watermark + timedelta(hours=12)))
        apply(baseline, events[-1:])
        final = baseline.snapshot().to_dict()
        for boundary in (4, len(events)):
            with tempfile.TemporaryDirectory() as tmp:
                crashed = fresh_session()
                crashed.attach_journal(SessionJournal.create(tmp, snapshot_every=1))
                apply(crashed, events[:boundary])
                crashed.journal.close()  # "crash": the rest never happens
                recovered = restore_session(fresh_session(), tmp)
                apply(recovered, events[boundary:])
                if recovered.snapshot().to_dict() != final:
                    violations.append(
                        f"resume at event boundary {boundary} diverged from "
                        f"the uninterrupted run"
                    )
    except ReproError as exc:
        return _outcome(name, [f"mini-session raised {type(exc).__name__}: {exc}"])
    return _outcome(
        name,
        violations,
        detail=f"2 crash boundaries over {len(events)} events, both bitwise equal",
    )


def check_replan_no_worse_realized(run: CellRun) -> InvariantResult:
    """Re-planning against the realized series never worsens realized cost.

    Drives a mini-session (first two households, no auto-commit horizon):
    ingest the first input halves, replan, freeze the early placements
    with an explicit commit through the target's midpoint, ingest the
    rest and replan — that is the *stale* schedule, planned against the
    forecast target.  Then reveal the realized series (a deterministic
    ±12.5% perturbation of the target), retarget the session and replan
    the open window.  Committed placements are frozen in both plans, so
    the re-planned schedule must score at least as well against the
    realized series as the stale one — learning the truth can only help.
    This is the oracle that pins the robust-scheduling subsystem's
    ``evaluate_realized``/``retarget`` loop end to end.
    """
    from repro.scheduling.robust import evaluate_realized
    from repro.session import FlexibilitySession
    from repro.timeseries.series import TimeSeries

    name = "replan-no-worse-realized"
    if run.result.schedule is None:
        return _skipped(name, "cell ran without a schedule stage")
    if not isinstance(run.target, TimeSeries):
        return _skipped(
            name,
            "sessions re-plan plain targets only; zoned markets keep the "
            "one-shot pipeline",
        )
    if run.entry.name in run.scenario.per_household_params:
        return _skipped(
            name, "per-household extractor parameters; no shared session extractor"
        )
    traces = run.fleet.traces[:2]
    session = FlexibilitySession.for_fleet(
        traces,
        extractor=run.make_extractor(),
        seed=run.scenario.seed,
        target=run.target,
    )
    from repro.api.registry import input_series_for

    inputs = [input_series_for(session.extractor, trace) for trace in traces]
    half = inputs[0].axis.length // 2
    axis = run.target.axis
    mid_instant = axis.start + (axis.length // 2) * axis.resolution
    rng = np.random.default_rng(run.scenario.seed + 104729)
    realized = TimeSeries(
        axis,
        run.target.values * (1.0 + 0.25 * (rng.random(axis.length) - 0.5)),
        name=f"{run.target.name}-realized",
    )
    try:
        for index, series in enumerate(inputs):
            session.ingest(index, 0, series.values[:half])
        session.replan()
        session.commit(mid_instant)
        for index, series in enumerate(inputs):
            session.ingest(index, half, series.values[half:])
        stale = session.replan()
        if stale.schedule is None:
            return _skipped(name, "mini-session produced no schedule to score")
        stale_eval = evaluate_realized(stale.schedule, realized)
        session.retarget(realized)
        fresh = session.replan()
        if fresh.schedule is None:
            return _outcome(name, ["re-planned mini-session lost its schedule"])
        fresh_eval = evaluate_realized(fresh.schedule, realized)
    except ReproError as exc:
        return _outcome(name, [f"mini-session raised {type(exc).__name__}: {exc}"])
    violations: list[str] = []
    tolerance = 1e-9 * max(1.0, abs(stale_eval.realized_cost))
    if fresh_eval.realized_cost > stale_eval.realized_cost + tolerance:
        violations.append(
            f"re-planning against the realized series worsened realized cost: "
            f"{fresh_eval.realized_cost:.9f} vs stale {stale_eval.realized_cost:.9f}"
        )
    return _outcome(
        name,
        violations,
        detail=(
            f"stale {stale_eval.realized_cost:.4f} -> replanned "
            f"{fresh_eval.realized_cost:.4f} realized cost, "
            f"{len(stale.committed)} committed placements frozen"
        ),
    )


def _mini_fleet_energy(run: CellRun, clone_factor: int) -> float:
    """|total aggregate midpoint energy| of a (possibly cloned) mini fleet.

    Re-runs the extract→group→aggregate chain over the cell's first two
    households, ``clone_factor`` times each.  Clone ``j`` reuses the rng
    stream of household ``j % base`` (same seeds — bitwise the same
    extraction) under a fresh offer-id scope and household id (fresh
    ids), exactly the metamorphic doubling the invariant promises.
    The absolute value keeps production-level cells (negative-energy sign
    convention) on the same "more is more" scale as consumption cells.
    """
    from repro.aggregation.aggregate import aggregate_all
    from repro.aggregation.grouping import group_offers
    from repro.api.registry import input_series_for
    from repro.evaluation.comparison import SEED_STRIDE
    from repro.flexoffer.model import offer_id_scope
    from repro.pipeline.fleet import stamp_household

    traces = run.fleet.traces[:2]
    base = len(traces)
    offers: list[FlexOffer] = []
    for job in range(base * clone_factor):
        index = job % base
        trace = traces[index]
        extractor = run.make_extractor()
        rng = np.random.default_rng(run.scenario.seed + SEED_STRIDE * index)
        series = input_series_for(extractor, trace)
        suffix = "" if job < base else f"~clone{job // base}"
        with offer_id_scope(f"mono-h{index}{suffix}"):
            result = extractor.extract(series, rng)
        offers.extend(
            stamp_household(result.offers, trace.config.household_id + suffix)
        )
    groups = group_offers(offers, None)
    with offer_id_scope(f"mono-fleet-x{clone_factor}"):
        aggregates = aggregate_all(groups)
    return abs(
        float(
            sum(s.midpoint for a in aggregates for s in a.offer.slices)
        )
    )


def check_fleet_monotonicity(run: CellRun) -> InvariantResult:
    """Doubling the fleet (fresh ids, same seeds) never shrinks energy out.

    Metamorphic relation over the extract→group→aggregate chain: cloning
    every household of a two-household mini fleet — fresh household and
    offer ids, the *same* per-household rng seeds, so each clone extracts
    bitwise the same offers — must at least double the inputs, and the
    aggregated output energy must therefore never *shrink*.  Catches id
    collisions silently dropping offers, grouping that loses members at
    scale, and aggregation folding clones into each other.
    """
    name = "fleet-monotonicity"
    if run.entry.name in run.scenario.per_household_params:
        return _skipped(
            name, "per-household extractor parameters; clone parameters ambiguous"
        )
    try:
        base_energy = _mini_fleet_energy(run, clone_factor=1)
        doubled_energy = _mini_fleet_energy(run, clone_factor=2)
    except ReproError as exc:
        return _outcome(name, [f"mini-fleet run raised {type(exc).__name__}: {exc}"])
    violations: list[str] = []
    tolerance = 1e-9 * max(1.0, base_energy)
    if doubled_energy < base_energy - tolerance:
        violations.append(
            f"doubled fleet aggregates {doubled_energy:.6f} kWh, less than the "
            f"base fleet's {base_energy:.6f} kWh (monotonicity broken)"
        )
    return _outcome(
        name,
        violations,
        detail=f"base {base_energy:.3f} kWh -> doubled {doubled_energy:.3f} kWh",
    )


def _gini(values: list[float]) -> float:
    """Gini coefficient of non-negative values (0 = equal, →1 = one-takes-all)."""
    sorted_values = np.sort(np.asarray(values, dtype=np.float64))
    n = sorted_values.size
    total = float(sorted_values.sum())
    if n < 2 or total <= 0.0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2 * ranks - n - 1) @ sorted_values / (n * total))


def _fairness_violations(
    label: str, allocations: list[float], capacities: list[float]
) -> list[str]:
    """Starvation checks on one aggregate's member energy allocations.

    Pure over its inputs (the unit fixture proves it fires on a
    constructed starvation), shared by the matrix invariant: every member
    with capacity must receive at least ``FAIRNESS_MIN_SHARE`` of its
    capacity-proportional share of the allocated total, and the Gini
    coefficient of allocation/capacity ratios must stay under
    ``FAIRNESS_GINI_BOUND``.
    """
    violations: list[str] = []
    total_alloc = float(sum(allocations))
    total_cap = float(sum(capacities))
    if total_alloc <= 0.0 or total_cap <= 0.0:
        return violations
    ratios: list[float] = []
    for member, (alloc, cap) in enumerate(zip(allocations, capacities)):
        if cap <= 0.0:
            continue
        floor = FAIRNESS_MIN_SHARE * (cap / total_cap) * total_alloc
        if alloc < floor - 1e-9:
            violations.append(
                f"{label}: member {member} starved — allocated {alloc:.6f} kWh, "
                f"floor {floor:.6f} (capacity share {cap / total_cap:.1%})"
            )
        ratios.append(alloc / cap)
    spread = _gini(ratios)
    if spread > FAIRNESS_GINI_BOUND:
        violations.append(
            f"{label}: allocation/capacity Gini {spread:.3f} exceeds "
            f"{FAIRNESS_GINI_BOUND} (systematic starvation)"
        )
    return violations


def check_disaggregation_fairness(run: CellRun) -> InvariantResult:
    """No aggregate member is systematically starved by disaggregation.

    Probes each multi-member aggregate's schedule→disaggregate loop at
    the ``_FAIRNESS_PROBES`` (mid and max energy, earliest and latest
    start), sums each member's allocated |energy| across the probes, and
    applies :func:`_fairness_violations`: a per-member floor proportional
    to capacity share plus a Gini bound on allocation/capacity ratios.
    Capacity is each member's largest-magnitude slice bound summed over
    slices, which keeps production-level (negative-energy) members on the
    same scale as consumption members.
    """
    name = "disaggregation-fairness"
    probed = [a for a in run.result.aggregates if len(a.members) > 1]
    if not probed:
        return _skipped(name, "cell produced no multi-member aggregates")
    probed = probed[:FAIRNESS_MAX_AGGREGATES]
    violations: list[str] = []
    for aggregate in probed:
        label = aggregate.offer.offer_id
        allocations = [0.0] * len(aggregate.members)
        try:
            for level, start_kind in _FAIRNESS_PROBES:
                offer = aggregate.offer
                start = (
                    offer.earliest_start
                    if start_kind == "earliest"
                    else offer.latest_start
                )
                schedule = default_schedule(offer, start=start, level=level)
                for member, part in enumerate(_disaggregate(aggregate, schedule)):
                    allocations[member] += abs(part.total_energy)
        except ReproError as exc:
            violations.append(
                f"{label}: fairness probe raised {type(exc).__name__}: {exc}"
            )
            continue
        capacities = [
            float(
                sum(
                    max(abs(s.energy_min), abs(s.energy_max))
                    for s in member.slices
                )
            )
            for member in aggregate.members
        ]
        violations.extend(_fairness_violations(label, allocations, capacities))
    return _outcome(
        name,
        violations,
        detail=(
            f"{len(probed)} multi-member aggregates x "
            f"{len(_FAIRNESS_PROBES)} probes"
        ),
    )


#: The invariant library, in report order.  Adding an entry here enrolls it
#: on every cell of the matrix.
INVARIANTS: dict[str, Callable[[CellRun], InvariantResult]] = {
    "offer-validity": check_offer_validity,
    "energy-conservation": check_energy_conservation,
    "aggregate-roundtrip": check_aggregate_roundtrip,
    "batched-equals-sequential": check_batched_equals_sequential,
    "engine-fidelity": check_engine_fidelity,
    "scheduling-feasibility": check_scheduling_feasibility,
    "zone-partition": check_zone_partition,
    "market-clearing": check_market_clearing,
    "grouping-monotonicity": check_grouping_monotonicity,
    "report-roundtrip": check_report_roundtrip,
    "committed-placement-stability": check_committed_placement_stability,
    "crash-recovery-equivalence": check_crash_recovery_equivalence,
    "replan-no-worse-realized": check_replan_no_worse_realized,
    "fleet-monotonicity": check_fleet_monotonicity,
    "disaggregation-fairness": check_disaggregation_fairness,
}


def validate_invariant_names(names: tuple[str, ...] | list[str]) -> None:
    """Raise (naming the alternatives) on any unknown invariant name."""
    unknown = [n for n in names if n not in INVARIANTS]
    if unknown:
        raise ReproError(
            f"unknown invariant(s) {', '.join(map(repr, unknown))}; "
            f"available: {', '.join(INVARIANTS)}"
        )


def run_invariants(
    run: CellRun, names: tuple[str, ...] | list[str] | None = None
) -> tuple[InvariantResult, ...]:
    """Run the (selected) invariant library over one executed cell."""
    if names is None:
        selected = INVARIANTS
    else:
        validate_invariant_names(names)
        selected = {n: INVARIANTS[n] for n in names}
    return tuple(check(run) for check in selected.values())

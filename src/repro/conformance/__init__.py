"""Conformance subsystem: prove every registered extractor on every workload.

The paper's central claim is that flexibility extraction works
*automatically* across heterogeneous household behaviours.  This package
turns that claim into machinery:

* :mod:`repro.conformance.matrix` — a declarative **scenario matrix**: named,
  cached, deterministic fleet workloads (seasonal, DST week, gap-ridden
  metering, EV-heavy, heat-pump winter, PV prosumers, weekend-skewed,
  100-household scale, tariff-switch) crossed with every approach in the
  extractor registry, with explicit per-cell compatibility rules.
* :mod:`repro.conformance.invariants` — a reusable **invariant library**:
  flex-offer policy validity, energy conservation, N-to-1
  aggregate/disaggregate round-trips, batched-pipeline ≡ sequential-loop
  (exact, offer ids included), vectorized ≡ reference matching engine,
  schedule-stage feasibility, zone-partition integrity on zoned markets,
  and run-report JSON round-trip determinism.
* :mod:`repro.conformance.runner` — the **runner**: executes every
  compatible (scenario × extractor) cell and emits a structured, JSON
  round-trippable :class:`~repro.conformance.runner.ConformanceReport`.

Every future extractor registered via
:func:`repro.api.registry.register_extractor` and every scenario added to
the matrix gets this correctness contract for free — the pytest tier-2
suite (``tests/test_conformance_matrix.py``) and the ``repro conformance``
CLI subcommand both enumerate the matrix dynamically.
"""

from repro.conformance.invariants import (
    INVARIANTS,
    CellRun,
    InvariantResult,
    run_invariants,
)
from repro.conformance.matrix import (
    ConformanceScenario,
    incompatibility,
    matrix_cells,
    scenario_matrix,
    scenario_names,
)
from repro.conformance.runner import (
    CellReport,
    ConformanceReport,
    check_cell,
    run_cell,
    run_conformance,
)

__all__ = [
    "INVARIANTS",
    "CellRun",
    "InvariantResult",
    "run_invariants",
    "ConformanceScenario",
    "incompatibility",
    "matrix_cells",
    "scenario_matrix",
    "scenario_names",
    "CellReport",
    "ConformanceReport",
    "check_cell",
    "run_cell",
    "run_conformance",
]

"""The conformance runner: execute matrix cells, emit a structured report.

One *cell* is one (scenario × extractor) pair.  :func:`run_cell` executes
it — the batched :class:`~repro.pipeline.FleetPipeline` over the scenario's
cached fleet, plus the sequential reference rerun the equivalence invariant
needs — and :func:`check_cell` scores it against the invariant library.
:func:`run_conformance` does that for the whole (sub)matrix and returns a
:class:`ConformanceReport`: a versioned, JSON round-trippable record whose
shape is golden-pinned by the tier-2 suite, so both invariant regressions
*and* silent matrix shrinkage fail loudly.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.aggregation.aggregate import aggregate_all
from repro.aggregation.grouping import group_offers
from repro.api.registry import ExtractorEntry, create_extractor, input_series_for
from repro.conformance.invariants import (
    CellRun,
    InvariantResult,
    run_invariants,
    validate_invariant_names,
)
from repro.conformance.matrix import ConformanceScenario, matrix_cells
from repro.errors import DataError
from repro.evaluation.comparison import SEED_STRIDE
from repro.flexoffer.model import offer_id_scope
from repro.pipeline.fleet import (
    FleetPipeline,
    FleetResult,
    HouseholdOutput,
    StageTimings,
    fleet_schedule_target,
    fleet_zoned_target,
    run_sequential,
    schedule_aggregates,
    stamp_household,
)
from repro.market.model import MarketConfig
from repro.scheduling.greedy import ScheduleConfig

#: Wire-format version of conformance reports; bump on incompatible change.
CONFORMANCE_VERSION = 1

#: Every cell runs the schedule stage with this configuration (greedy
#: placement only; the scheduling-feasibility invariant exercises the
#: stochastic improver separately on the greedy output).  Cells of
#: ``zoned``-tagged scenarios use the incremental-gain engine instead —
#: the zone-sharded hot path — so its bitwise-equivalence contract is
#: proven on every extractor's real fleet aggregates, not just benchmarks.
CELL_SCHEDULE_CONFIG = ScheduleConfig()
CELL_ZONED_SCHEDULE_CONFIG = ScheduleConfig(engine="incremental")
#: ``priced``-tagged scenarios additionally clear a merit-order market
#: before placement (small coupling so the spill pass is a live code path).
CELL_PRICED_SCHEDULE_CONFIG = ScheduleConfig(
    engine="incremental", market=MarketConfig(slices=6, coupling_kwh=2.0)
)


@dataclass(frozen=True)
class CellReport:
    """One cell's outcome: workload coordinates, output size, invariants."""

    scenario: str
    extractor: str
    households: int
    days: int
    offers: int
    aggregates: int
    extracted_kwh: float
    invariants: tuple[InvariantResult, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "invariants", tuple(self.invariants))

    @property
    def passed(self) -> bool:
        """True when no invariant failed (skips do not fail a cell)."""
        return all(result.status != "fail" for result in self.invariants)

    def violations(self) -> list[str]:
        """All violation messages, prefixed with the failing invariant."""
        return [
            f"{self.scenario} x {self.extractor} [{result.name}]: {message}"
            for result in self.invariants
            for message in result.violations
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "extractor": self.extractor,
            "households": self.households,
            "days": self.days,
            "offers": self.offers,
            "aggregates": self.aggregates,
            "extracted_kwh": round(self.extracted_kwh, 6),
            "invariants": [result.to_dict() for result in self.invariants],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellReport":
        try:
            return cls(
                scenario=data["scenario"],
                extractor=data["extractor"],
                households=data["households"],
                days=data["days"],
                offers=data["offers"],
                aggregates=data["aggregates"],
                extracted_kwh=data["extracted_kwh"],
                invariants=tuple(
                    InvariantResult.from_dict(r) for r in data["invariants"]
                ),
            )
        except KeyError as exc:
            raise DataError(f"cell report missing field: {exc}") from exc


@dataclass(frozen=True)
class ConformanceReport:
    """The whole matrix run, serialisable and golden-pinnable."""

    cells: tuple[CellReport, ...]
    version: int = CONFORMANCE_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))

    @property
    def passed(self) -> bool:
        return all(cell.passed for cell in self.cells)

    @property
    def failures(self) -> tuple[CellReport, ...]:
        return tuple(cell for cell in self.cells if not cell.passed)

    def violations(self) -> list[str]:
        return [message for cell in self.cells for message in cell.violations()]

    def shape(self) -> dict[str, dict[str, str]]:
        """The value-free structure of the run: cell → invariant → status.

        This is what the golden pin compares — statuses and matrix
        coverage, not floats — so it survives timing noise and numeric
        library drift while still catching dropped cells, new skips and
        invariant regressions.
        """
        return {
            f"{cell.scenario} x {cell.extractor}": {
                result.name: result.status for result in cell.invariants
            }
            for cell in self.cells
        }

    def summary(self) -> dict[str, int]:
        return {
            "cells": len(self.cells),
            "passed": sum(1 for cell in self.cells if cell.passed),
            "failed": len(self.failures),
            "violations": len(self.violations()),
        }

    def table_rows(self) -> list[dict[str, Any]]:
        """One human-readable row per cell (CLI output)."""
        rows: list[dict[str, Any]] = []
        for cell in self.cells:
            skipped = sum(1 for r in cell.invariants if r.status == "skipped")
            failed = [r.name for r in cell.invariants if r.status == "fail"]
            rows.append(
                {
                    "scenario": cell.scenario,
                    "extractor": cell.extractor,
                    "offers": cell.offers,
                    "aggregates": cell.aggregates,
                    "kwh": round(cell.extracted_kwh, 2),
                    "status": "FAIL: " + ", ".join(failed) if failed else "ok",
                    "skipped": skipped,
                }
            )
        return rows

    # ------------------------------------------------------------------ #
    # Wire format
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "summary": self.summary(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConformanceReport":
        if "version" not in data:
            raise DataError("conformance report missing field: 'version'")
        version = data["version"]
        if version != CONFORMANCE_VERSION:
            raise DataError(f"unsupported conformance report version {version}")
        try:
            return cls(
                cells=tuple(CellReport.from_dict(c) for c in data["cells"]),
                version=version,
            )
        except KeyError as exc:
            raise DataError(f"conformance report missing field: {exc}") from exc

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ConformanceReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ConformanceReport":
        return cls.from_json(Path(path).read_text())

    def to_markdown(self) -> str:
        """The report as a GitHub-flavoured markdown table (CI job summary)."""
        summary = self.summary()
        headline = "✅ conformance passed" if self.passed else "❌ conformance FAILED"
        lines = [
            "## Conformance matrix",
            "",
            f"{headline} — {summary['cells']} cells, "
            f"{summary['passed']} passed, {summary['failed']} failed, "
            f"{summary['violations']} violations",
            "",
            "| scenario | extractor | offers | aggregates | kWh | status |",
            "|---|---|---:|---:|---:|---|",
        ]
        for row in self.table_rows():
            status = row["status"]
            if row["skipped"]:
                status += f" ({row['skipped']} skipped)"
            lines.append(
                f"| {row['scenario']} | {row['extractor']} | {row['offers']} "
                f"| {row['aggregates']} | {row['kwh']} | {status} |"
            )
        violations = self.violations()
        if violations:
            lines += ["", "### Violations", ""]
            lines += [f"- `{message}`" for message in violations]
        return "\n".join(lines) + "\n"

    def save_markdown(self, path: str | Path) -> None:
        Path(path).write_text(self.to_markdown())


# ---------------------------------------------------------------------- #
# Cell execution
# ---------------------------------------------------------------------- #


def cell_schedule_target(scenario: ConformanceScenario, fleet):
    """The deterministic schedule-stage target of a scenario's cells.

    ``zoned``-tagged scenarios get a three-zone
    :class:`~repro.scheduling.zones.ZonedTarget` (explicit household
    assignment for half the fleet, hash shard for the rest); every other
    scenario keeps the single wind-surplus target.
    """
    if "zoned" in scenario.tags:
        return fleet_zoned_target(fleet, seed=scenario.seed + 1, zones=3)
    return fleet_schedule_target(fleet, seed=scenario.seed + 1)


def cell_schedule_config(scenario: ConformanceScenario) -> ScheduleConfig:
    """The schedule-stage configuration of a scenario's cells."""
    if "priced" in scenario.tags:
        return CELL_PRICED_SCHEDULE_CONFIG
    if "zoned" in scenario.tags:
        return CELL_ZONED_SCHEDULE_CONFIG
    return CELL_SCHEDULE_CONFIG


def _run_per_household(
    scenario: ConformanceScenario, entry: ExtractorEntry, fleet, target
) -> FleetResult:
    """Sequential run with a household-specific extractor per trace.

    Mirrors the pipeline's determinism contract — per-household rng
    streams, per-household id scopes, a ``fleet`` scope for aggregation —
    so the invariants apply unchanged even though no single extractor can
    serve the whole fleet (the multi-tariff approach's per-consumer
    reference series).
    """
    per_household = scenario.per_household_params[entry.name]
    base = scenario.params_for(entry.name)
    outputs: list[HouseholdOutput] = []
    for index, trace in enumerate(fleet.traces):
        extractor = create_extractor(
            entry.name, **{**base, **dict(per_household(index))}
        )
        rng = np.random.default_rng(scenario.seed + SEED_STRIDE * index)
        series = input_series_for(extractor, trace)
        with offer_id_scope(f"h{index}"):
            result = extractor.extract(series, rng)
        outputs.append(
            HouseholdOutput(
                index=index,
                household_id=trace.config.household_id,
                offers=stamp_household(result.offers, trace.config.household_id),
                summary=result.summary(),
            )
        )
    offers = [offer for output in outputs for offer in output.offers]
    groups = group_offers(offers, None)
    with offer_id_scope("fleet"):
        aggregates = aggregate_all(groups)
    return FleetResult(
        households=tuple(outputs),
        aggregates=tuple(aggregates),
        timings=StageTimings(),
        schedule=schedule_aggregates(
            aggregates, target, cell_schedule_config(scenario)
        ),
    )


def run_cell(
    scenario: ConformanceScenario,
    entry: ExtractorEntry,
    invariants: tuple[str, ...] | list[str] | None = None,
) -> CellRun:
    """Execute one matrix cell and capture everything the invariants need.

    ``invariants`` names the checks that will run on the cell (``None`` =
    the full library); the sequential reference rerun — which exists only
    to feed ``batched-equals-sequential`` — is skipped when that invariant
    is not selected, halving restricted runs.
    """
    fleet = scenario.build()
    target = cell_schedule_target(scenario, fleet)
    params = scenario.params_for(entry.name)
    needs_sequential = invariants is None or "batched-equals-sequential" in invariants

    if entry.name in scenario.per_household_params:
        per_household = scenario.per_household_params[entry.name]

        def make_extractor(**overrides: Any):
            return create_extractor(
                entry.name, **{**params, **dict(per_household(0)), **overrides}
            )

        result = _run_per_household(scenario, entry, fleet, target)
        sequential = None
    else:

        def make_extractor(**overrides: Any):
            return create_extractor(entry.name, **{**params, **overrides})

        extractor = make_extractor()
        schedule_config = cell_schedule_config(scenario)
        pipeline = FleetPipeline(
            extractor,
            chunk_size=scenario.chunk_size,
            seed=scenario.seed,
            schedule=schedule_config,
        )
        result = pipeline.run(fleet, target=target)
        sequential = (
            run_sequential(
                fleet,
                extractor,
                seed=scenario.seed,
                target=target,
                schedule_config=schedule_config,
            )
            if needs_sequential
            else None
        )

    return CellRun(
        scenario=scenario,
        entry=entry,
        fleet=fleet,
        result=result,
        sequential=sequential,
        target=target,
        make_extractor=make_extractor,
    )


def check_cell(
    run: CellRun, invariants: tuple[str, ...] | list[str] | None = None
) -> CellReport:
    """Score one executed cell against the (selected) invariant library."""
    results = run_invariants(run, invariants)
    return CellReport(
        scenario=run.scenario.name,
        extractor=run.entry.name,
        households=len(run.fleet.traces),
        days=run.fleet.days,
        offers=len(run.result.offers),
        aggregates=len(run.result.aggregates),
        extracted_kwh=run.result.total_extracted_kwh,
        invariants=results,
    )


def _crashed_cell_report(
    scenario: ConformanceScenario, entry: ExtractorEntry, exc: Exception
) -> CellReport:
    """A failing report for a cell whose *execution* raised.

    Invariants report violations instead of raising, but the extraction
    run itself can still blow up (a future extractor choking on a
    degenerate scenario); that must fail the one cell, not hide the rest
    of the matrix.
    """
    return CellReport(
        scenario=scenario.name,
        extractor=entry.name,
        households=0,
        days=0,
        offers=0,
        aggregates=0,
        extracted_kwh=0.0,
        invariants=(
            InvariantResult(
                name="cell-execution",
                status="fail",
                violations=(f"cell raised {type(exc).__name__}: {exc}",),
            ),
        ),
    )


def _run_cell_to_dict(
    position: int,
    scenario_name: str,
    extractor_name: str,
    invariants: tuple[str, ...] | None,
) -> dict[str, Any]:
    """Worker entry point: execute one cell, return its report as a dict.

    Module-level (so it pickles under multiprocessing) and dict-valued (so
    the parent rebuilds the exact :class:`CellReport` the in-process path
    would have produced — the worker-fanout ≡ in-process contract).
    ``position`` is the cell's matrix index (the fault-injection
    coordinate of the worker-death tests).
    """
    from repro.api.registry import get_entry
    from repro.conformance.matrix import get_scenario
    from repro.testing import faults

    faults.fire("conformance-cell", position)
    scenario = get_scenario(scenario_name)
    entry = get_entry(extractor_name)
    try:
        report = check_cell(run_cell(scenario, entry, invariants), invariants)
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        report = _crashed_cell_report(scenario, entry, exc)
    return report.to_dict()


def run_conformance(
    scenarios: tuple[str, ...] | list[str] | None = None,
    extractors: tuple[str, ...] | list[str] | None = None,
    invariants: tuple[str, ...] | list[str] | None = None,
    workers: int | None = None,
) -> ConformanceReport:
    """Run every compatible cell of the (sub)matrix and report.

    ``scenarios``/``extractors``/``invariants`` restrict the run by name;
    the default is the full matrix under the full invariant library.
    Unknown names fail fast (before any cell executes); a cell whose
    execution raises becomes a failing cell report instead of aborting
    the matrix.  ``workers`` > 1 fans cells out over a process pool —
    every cell is deterministic, so the report is identical to the
    in-process run (cells arrive in matrix order regardless of which
    worker finishes first).  The fan-out rides the fault-tolerant
    dispatcher: a worker killed outright (OOM, segfault) rebuilds the
    pool and re-dispatches only the outstanding cells, and a cell whose
    retries run out executes in-process — a dead worker can therefore
    never fail, or lose, a cell.
    """
    from repro.errors import ValidationError

    if invariants is not None:
        validate_invariant_names(invariants)
    if workers is not None and workers < 1:
        raise ValidationError("workers must be >= 1 (or None)")
    cells = matrix_cells(scenarios, extractors)
    selected = None if invariants is None else tuple(invariants)

    if workers is not None and workers > 1 and len(cells) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.pipeline.dispatch import dispatch_chunks

        def run_cell_locally(position: int) -> dict[str, Any]:
            # The in-process degradation path after retry exhaustion.
            # Deliberately *not* routed through the module-level
            # _run_cell_to_dict: that name is the worker entry (and the
            # worker-death tests' injection point) — the local fallback
            # must run the real cell.
            scenario, entry = cells[position]
            try:
                report = check_cell(run_cell(scenario, entry, selected), selected)
            except Exception as exc:  # noqa: BLE001 - isolation is the contract
                report = _crashed_cell_report(scenario, entry, exc)
            return report.to_dict()

        task_args = [
            (position, scenario.name, entry.name, selected)
            for position, (scenario, entry) in enumerate(cells)
        ]
        dicts = dispatch_chunks(
            task_args,
            _run_cell_to_dict,
            lambda: ProcessPoolExecutor(max_workers=workers),
            run_cell_locally,
            label="conformance cells",
        )
        return ConformanceReport(
            cells=tuple(CellReport.from_dict(data) for data in dicts)
        )

    reports = []
    for scenario, entry in cells:
        try:
            reports.append(check_cell(run_cell(scenario, entry, selected), selected))
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            reports.append(_crashed_cell_report(scenario, entry, exc))
    return ConformanceReport(cells=tuple(reports))

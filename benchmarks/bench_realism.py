"""E9 / §3.1 + §6: realism statistics of every approach vs ground truth.

The paper laments that "the statistics (e.g., correlation, sparseness,
autocorrelation) of the output of flexibility extraction cannot be
evaluated" because real flex-offers do not exist.  Against simulator ground
truth they can: this bench runs all five implementable generators on the
same fleet and regenerates the paper's qualitative ranking —
appliance-level > household-level > random baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.comparison import compare_on_traces, default_suite


def test_realism_comparison(benchmark, report, bench_fleet):
    traces = bench_fleet.traces[:8]

    def compare():
        return compare_on_traces(traces)

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = result.mean_rows()
    report("E9 — realism statistics per approach (mean over 8 households)", rows)

    by_name = {r["extractor"]: r for r in rows}
    random_row = by_name["random-baseline"]
    basic_row = by_name["basic"]
    peak_row = by_name["peak-based"]
    freq_row = by_name["frequency-based"]
    sched_row = by_name["schedule-based"]

    # The paper's ranking on ground-truth fidelity.
    assert freq_row["gt_f1"] > peak_row["gt_f1"] > random_row["gt_f1"]
    assert sched_row["gt_f1"] > random_row["gt_f1"]
    # Shape-awareness: correlation with consumption.
    assert peak_row["corr_consumption"] > basic_row["corr_consumption"] > random_row["corr_consumption"]
    # §1 criticism: random offers disperse uniformly over the day.
    assert random_row["dispersion"] > peak_row["dispersion"]
    # Peak-based sits on consumption peaks by construction.
    assert peak_row["peak_fraction"] > 0.8
    # Conservation: every real approach conserves; random does not.
    for name in ("basic", "peak-based", "frequency-based", "schedule-based"):
        assert by_name[name]["conservation_err"] < 1e-3
    assert random_row["conservation_err"] > 1.0

"""Ablation: peak-detection threshold and peak-selection policy.

DESIGN.md §5: the paper picks the daily *mean* as the detection threshold
and *size-proportional sampling* for selection without justification.  This
bench quantifies both choices against alternatives on a simulated fleet,
scoring each variant by how much of the extracted energy lands on true
consumption peaks and how it overlaps ground-truth flexibility.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExtractionError
from repro.evaluation.groundtruth import energy_overlap
from repro.evaluation.realism import offers_to_expected_series, peak_energy_fraction
from repro.extraction.params import FlexOfferParams
from repro.extraction.peaks import detect_peaks, filter_peaks, selection_probabilities
from repro.workloads.paper_day import figure5_day

THRESHOLDS = {
    "mean (paper)": lambda v: float(v.mean()),
    "median": lambda v: float(np.median(v)),
    "mean+0.5*std": lambda v: float(v.mean() + 0.5 * v.std()),
    "75th percentile": lambda v: float(np.quantile(v, 0.75)),
}


def test_threshold_ablation_on_paper_day(benchmark, report):
    day = figure5_day()

    def detect_all():
        return {
            name: detect_peaks(day.series.values, threshold=fn(day.series.values))
            for name, fn in THRESHOLDS.items()
        }

    results = benchmark(detect_all)
    rows = []
    for name, peaks in results.items():
        survivors = filter_peaks(peaks, 1.951)
        rows.append(
            {
                "threshold": name,
                "peaks_found": len(peaks),
                "survivors": len(survivors),
                "largest_size": round(max((p.size for p in peaks), default=0.0), 2),
            }
        )
    report("Ablation — detection threshold on the Figure 5 day", rows)
    # The paper's configuration reproduces the printed 8 peaks / 2 survivors.
    assert len(results["mean (paper)"]) == 8
    assert len(filter_peaks(results["mean (paper)"], 1.951)) == 2
    # Stricter thresholds find fewer peaks.
    assert len(results["mean+0.5*std"]) <= len(results["mean (paper)"])


def test_selection_policy_ablation(benchmark, report, bench_fleet):
    """Size-sampled vs argmax vs uniform selection, scored on ground truth."""
    params = FlexOfferParams(flexible_share=0.05)
    traces = bench_fleet.traces[:8]

    def run_policy(policy: str, seed: int = 1):
        overlaps = []
        peak_fracs = []
        for trace in traces:
            series = trace.metered()
            rng = np.random.default_rng(seed)
            modified = series.values.copy()
            offers = []
            for first, length in series.axis.day_slices():
                window = modified[first : first + length]
                day_energy = float(window.sum())
                flexible = 0.05 * day_energy
                candidates = filter_peaks(detect_peaks(window), flexible)
                if not candidates:
                    continue
                if policy == "size-sampled (paper)":
                    probs = selection_probabilities(candidates)
                    chosen = candidates[int(rng.choice(len(candidates), p=probs))]
                elif policy == "argmax":
                    chosen = max(candidates, key=lambda p: p.size)
                else:  # uniform
                    chosen = candidates[int(rng.integers(0, len(candidates)))]
                n = min(params.slices_max, chosen.length)
                block = window[chosen.first : chosen.first + n]
                block_energy = float(block.sum())
                if block_energy <= 0:
                    continue
                energies = np.minimum(block / block_energy * flexible, block)
                offer = params.build_offer(
                    series.axis.time_at(first + chosen.first), energies, rng,
                    source=policy,
                )
                offers.append(offer)
                window[chosen.first : chosen.first + n] -= energies
            expected = offers_to_expected_series(offers, series.axis)
            overlaps.append(energy_overlap(expected, trace.true_flexible()).f1)
            peak_fracs.append(peak_energy_fraction(expected, series))
        return float(np.mean(overlaps)), float(np.mean(peak_fracs))

    def run_all():
        return {
            policy: run_policy(policy)
            for policy in ("size-sampled (paper)", "argmax", "uniform")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {"selection": policy, "gt_overlap_f1": round(f1, 3), "peak_fraction": round(pf, 3)}
        for policy, (f1, pf) in results.items()
    ]
    report("Ablation — peak selection policy (8 households, 7 days)", rows)
    # All policies place energy overwhelmingly on peaks; the paper's
    # size-sampling is within noise of argmax and beats nothing badly.
    for _policy, (f1, peak_frac) in results.items():
        assert peak_frac > 0.8
    paper_f1 = results["size-sampled (paper)"][0]
    assert paper_f1 > 0.5 * results["argmax"][0]

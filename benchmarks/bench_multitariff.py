"""E6 / §3.3: multi-tariff extraction on paired tariff data.

The paper designed this approach but had no data ("we do not have the
required time series, thus we cannot show any results").  The simulator
provides the pair — the same household under flat and night tariffs with a
known behavioural response — so this bench shows the results the paper could
not: how much of the truly shifted energy the comparison-based extractor
recovers, and where it places the offers.
"""

from __future__ import annotations

from datetime import time

import numpy as np
import pytest

from repro.extraction.multitariff import MultiTariffExtractor
from repro.timeseries.calendar import DailyWindow


def test_multitariff_extraction(benchmark, report, bench_tariff_study):
    study = bench_tariff_study
    reference = study.single.metered()
    observed = study.multi.metered()
    extractor = MultiTariffExtractor(reference=reference, scheme=study.scheme)

    def extract():
        return extractor.extract(observed, np.random.default_rng(0))

    result = benchmark(extract)
    recovery = result.extracted_energy / study.shifted_energy_kwh
    report(
        "E6 — multi-tariff extraction vs simulated behavioural ground truth",
        [
            {"quantity": "true shifted energy (kWh)", "value": round(study.shifted_energy_kwh, 2)},
            {"quantity": "extracted energy (kWh)", "value": round(result.extracted_energy, 2)},
            {"quantity": "recovery ratio", "value": round(recovery, 3)},
            {"quantity": "offers", "value": len(result.offers)},
            {"quantity": "ground-truth shifts", "value": len(study.shifts)},
            {"quantity": "conservation error (kWh)", "value": round(result.energy_conservation_error(), 9)},
        ],
    )
    assert 0.4 <= recovery <= 1.5
    assert result.energy_conservation_error() < 1e-6


def test_multitariff_offers_land_in_cheap_hours(benchmark, report, bench_tariff_study):
    """Offers' observed positions cluster in the 22:00-06:00 window."""
    study = bench_tariff_study
    extractor = MultiTariffExtractor(
        reference=study.single.metered(), scheme=study.scheme
    )
    result = benchmark.pedantic(
        lambda: extractor.extract(study.multi.metered(), np.random.default_rng(0)),
        rounds=1, iterations=1,
    )
    night = DailyWindow(time(22, 0), time(6, 0))
    touching = sum(
        1
        for o in result.offers
        if night.contains(o.earliest_start) or night.contains(o.latest_start)
    )
    report(
        "E6 — offer placement relative to the low-tariff window",
        [
            {"offers": len(result.offers),
             "touching_night_window": touching,
             "fraction": round(touching / max(1, len(result.offers)), 3)},
        ],
    )
    assert touching == len(result.offers)


def test_multitariff_null_case(benchmark, report, bench_tariff_study):
    """Extracting from the unchanged series finds almost nothing."""
    study = bench_tariff_study
    extractor = MultiTariffExtractor(
        reference=study.single.metered(), scheme=study.scheme
    )

    def extract_null():
        return extractor.extract(study.single.metered(), np.random.default_rng(0))

    null_result = benchmark(extract_null)
    shifted_result = extractor.extract(study.multi.metered(), np.random.default_rng(0))
    report(
        "E6 — null control: same-series extraction",
        [
            {"case": "multi-tariff series", "extracted_kwh": round(shifted_result.extracted_energy, 2)},
            {"case": "unchanged series (control)", "extracted_kwh": round(null_result.extracted_energy, 2)},
        ],
    )
    assert null_result.extracted_energy < 0.5 * shifted_result.extracted_energy

"""E11 / §6: the downstream MIRABEL pipeline.

"Individual flex-offers have to be aggregated from thousands consumers
before the actual scheduling (and matching with the surplus RES
production)."  This bench runs the full loop — extract → group → aggregate →
schedule against wind surplus → disaggregate — and reports the imbalance
reduction over (a) not exploiting flexibility and (b) the random baseline,
plus the scheduling speed-up aggregation buys.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.aggregation import aggregate_all, disaggregate_schedule, group_offers
from repro.evaluation.comparison import collect_offers
from repro.extraction import FlexOfferParams, PeakBasedExtractor, RandomBaselineExtractor
from repro.scheduling import greedy_schedule, improve_schedule, naive_schedule
from repro.simulation.res import simulate_wind_production


@pytest.fixture(scope="module")
def pipeline_inputs(request):
    fleet = request.getfixturevalue("bench_fleet")
    params = FlexOfferParams(flexible_share=0.05)
    offers = collect_offers(fleet.traces, PeakBasedExtractor(params=params))
    random_offers = collect_offers(fleet.traces, RandomBaselineExtractor())
    axis = fleet.metering_axis()
    wind = simulate_wind_production(axis, np.random.default_rng(2))
    total_flex = sum(o.profile_energy_max for o in offers)
    target = wind * (total_flex / wind.total())
    return fleet, offers, random_offers, target


def test_mirabel_scheduling_value(benchmark, report, pipeline_inputs):
    fleet, offers, random_offers, target = pipeline_inputs

    def schedule_extracted():
        return greedy_schedule(offers, target)

    greedy = benchmark(schedule_extracted)
    naive = naive_schedule(offers, target)
    improved = improve_schedule(greedy, np.random.default_rng(3), iterations=400)
    random_sched = greedy_schedule(random_offers, target)

    rows = [
        {"plan": "no scheduling (demand at observed time)",
         "sq_imbalance": round(naive.cost, 2), "vs_naive": "1.00x"},
        {"plan": "greedy schedule of extracted offers",
         "sq_imbalance": round(greedy.cost, 2),
         "vs_naive": f"{naive.cost / greedy.cost:.2f}x better"},
        {"plan": "greedy + stochastic improvement",
         "sq_imbalance": round(improved.cost, 2),
         "vs_naive": f"{naive.cost / improved.cost:.2f}x better"},
        {"plan": "greedy schedule of random offers (old MIRABEL baseline)",
         "sq_imbalance": round(random_sched.cost, 2),
         "vs_naive": "n/a (different offer set)"},
    ]
    report("E11 — scheduling flexible demand under RES surplus", rows)

    assert greedy.cost < naive.cost          # flexibility has value
    assert improved.cost <= greedy.cost + 1e-9


def test_mirabel_aggregation_speedup(benchmark, report, pipeline_inputs):
    _fleet, offers, _random_offers, target = pipeline_inputs
    aggregates = aggregate_all(group_offers(offers))

    def schedule_aggregated():
        return greedy_schedule([a.offer for a in aggregates], target)

    agg_result = benchmark(schedule_aggregated)

    t0 = time.perf_counter()
    individual_result = greedy_schedule(offers, target)
    t_individual = time.perf_counter() - t0
    t0 = time.perf_counter()
    greedy_schedule([a.offer for a in aggregates], target)
    t_aggregated = time.perf_counter() - t0

    rows = [
        {"plan": f"individual ({len(offers)} offers)",
         "sq_imbalance": round(individual_result.cost, 2),
         "wall_ms": round(t_individual * 1000, 1)},
        {"plan": f"aggregated ({len(aggregates)} offers)",
         "sq_imbalance": round(agg_result.cost, 2),
         "wall_ms": round(t_aggregated * 1000, 1)},
    ]
    report("E11 — aggregation trades a little imbalance for scheduling speed", rows)

    assert len(aggregates) < len(offers)
    # Aggregation loses some flexibility: cost may rise, but bounded.
    assert agg_result.cost <= individual_result.cost * 2.0


def test_mirabel_disaggregation_roundtrip(benchmark, report, pipeline_inputs):
    _fleet, offers, _random, target = pipeline_inputs
    aggregates = aggregate_all(group_offers(offers))
    result = greedy_schedule([a.offer for a in aggregates], target)
    by_id = {a.offer.offer_id: a for a in aggregates}

    def disaggregate_all():
        return [
            disaggregate_schedule(by_id[s.offer.offer_id], s)
            for s in result.schedules
        ]

    benchmark.pedantic(disaggregate_all, rounds=1, iterations=1)

    total_members = 0
    for sched in result.schedules:
        parts = disaggregate_schedule(by_id[sched.offer.offer_id], sched)
        total_members += len(parts)
        assert sum(p.total_energy for p in parts) == pytest.approx(
            sched.total_energy, abs=1e-6
        )
    report(
        "E11 — schedule disaggregation back to households",
        [
            {"aggregates_scheduled": len(result.schedules),
             "member_schedules": total_members,
             "energy_roundtrip": "exact (per-aggregate, 1e-6 kWh)"},
        ],
    )
    assert total_members == sum(
        by_id[s.offer.offer_id].size for s in result.schedules
    )

"""E4 / Table 1: the appliance information catalogue.

Regenerates the printed table — appliance name, manufacturer, energy
consumption range — from the built-in database, and benchmarks the queries
the appliance-level extractors lean on (energy-range candidate lookup,
profile realisation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.appliances.database import TABLE1_NAMES, default_database, table1_database

#: The printed Table 1 ranges, keyed by our spec names.
PAPER_RANGES = {
    "vacuum-robot-x": (0.5, 1.0),
    "washing-machine-y": (1.2, 3.0),
    "dishwasher-z": (1.2, 2.0),
    "ev-small": (30.0, 50.0),
    "ev-medium": (50.0, 60.0),
    "ev-large": (60.0, 70.0),
}


def test_table1_contents(benchmark, report):
    db = benchmark(table1_database)
    rows = []
    for spec in db:
        paper_lo, paper_hi = PAPER_RANGES[spec.name]
        rows.append(
            {
                "appliance": spec.name,
                "manufacturer": spec.manufacturer,
                "paper_range_kwh": f"{paper_lo} - {paper_hi}",
                "measured_range_kwh": f"{spec.energy_min_kwh} - {spec.energy_max_kwh}",
                "profile_minutes": spec.cycle_minutes,
                "flexible": spec.flexible,
            }
        )
    report("Table 1 — appliance information", rows)
    assert tuple(db.names()) == TABLE1_NAMES
    for spec in db:
        assert (spec.energy_min_kwh, spec.energy_max_kwh) == PAPER_RANGES[spec.name]


def test_table1_profile_granularity(benchmark, report):
    """§4: profile 'granularity must be even smaller than 15 min' — ours is 1 min."""
    db = benchmark.pedantic(table1_database, rounds=1, iterations=1)
    rows = [
        {
            "appliance": spec.name,
            "granularity_minutes": 1,
            "profile_points": spec.cycle_minutes,
            "peak_power_kw": round(spec.peak_power_kw, 2),
        }
        for spec in db
    ]
    report("Table 1 — per-minute min/max profiles (paper requires < 15 min)", rows)
    for spec in db:
        lo, hi = spec.profile_bounds_minutes()
        assert len(lo) == len(hi) == spec.cycle_minutes
        assert (lo <= hi + 1e-12).all()


def test_candidate_lookup_throughput(benchmark):
    """Energy-range candidate queries — the detection step's hot lookup."""
    db = default_database()
    energies = np.linspace(0.1, 80.0, 500)

    def lookup_all():
        return [db.candidates_for_energy(float(e)) for e in energies]

    results = benchmark(lookup_all)
    assert any(len(r) > 0 for r in results)


def test_profile_realisation_throughput(benchmark):
    """Scaling unit shapes to concrete cycle energies (simulator hot path)."""
    db = table1_database()
    rng = np.random.default_rng(0)
    draws = [(spec, spec.sample_energy(rng)) for spec in db for _ in range(50)]

    def realise_all():
        return [spec.energy_profile_minutes(e) for spec, e in draws]

    profiles = benchmark(realise_all)
    for (spec, e), profile in zip(draws, profiles):
        assert profile.sum() == pytest.approx(e)

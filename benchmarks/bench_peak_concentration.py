"""E10 / §1 + §6: temporal concentration of aggregated flex-offers.

The paper's motivation: "with this random generation strategy, we can hardly
analyze the scalability of MIRABEL during the peak hours since macro (or
aggregated) flex-offers are more or less uniformly dispatched within the
day"; and its conclusion: "despite the fact that the peak-based approach
produces not very realistic flex-offers, the aggregated flex-offers are
pretty realistic".  This bench quantifies both statements on a fleet.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation import aggregate_all, group_offers
from repro.evaluation.comparison import collect_offers
from repro.evaluation.realism import offers_to_expected_series, peak_energy_fraction
from repro.extraction import FlexOfferParams, PeakBasedExtractor, RandomBaselineExtractor
from repro.timeseries.stats import correlation, temporal_dispersion


def test_peak_concentration_vs_random(benchmark, report, bench_fleet):
    axis = bench_fleet.metering_axis()
    consumption = bench_fleet.aggregate_metered()
    params = FlexOfferParams(flexible_share=0.05)

    def build_series():
        peak_offers = collect_offers(bench_fleet.traces, PeakBasedExtractor(params=params))
        random_offers = collect_offers(bench_fleet.traces, RandomBaselineExtractor())
        return (
            offers_to_expected_series(peak_offers, axis),
            offers_to_expected_series(random_offers, axis),
        )

    peak_series, random_series = benchmark.pedantic(build_series, rounds=1, iterations=1)

    rows = [
        {
            "generator": "peak-based extraction",
            "dispersion_intervals": round(temporal_dispersion(peak_series), 2),
            "peak_energy_fraction": round(peak_energy_fraction(peak_series, consumption), 3),
            "corr_with_fleet_load": round(correlation(peak_series, consumption), 3),
        },
        {
            "generator": "random baseline",
            "dispersion_intervals": round(temporal_dispersion(random_series), 2),
            "peak_energy_fraction": round(peak_energy_fraction(random_series, consumption), 3),
            "corr_with_fleet_load": round(correlation(random_series, consumption), 3),
        },
    ]
    report("E10 — macro flex-offer concentration: extraction vs random", rows)

    assert temporal_dispersion(peak_series) < temporal_dispersion(random_series)
    assert peak_energy_fraction(peak_series, consumption) > 2 * peak_energy_fraction(
        random_series, consumption
    )
    assert correlation(peak_series, consumption) > correlation(random_series, consumption)


def test_aggregated_offers_stay_realistic(benchmark, report, bench_fleet):
    """§6: aggregation preserves the realistic shape of extracted offers."""
    axis = bench_fleet.metering_axis()
    consumption = bench_fleet.aggregate_metered()
    params = FlexOfferParams(flexible_share=0.05)
    offers = collect_offers(bench_fleet.traces, PeakBasedExtractor(params=params))
    individual_series = offers_to_expected_series(offers, axis)

    aggregates = benchmark.pedantic(
        lambda: aggregate_all(group_offers(offers)), rounds=1, iterations=1
    )
    aggregate_series = offers_to_expected_series([a.offer for a in aggregates], axis)

    rows = [
        {"level": "individual offers",
         "count": len(offers),
         "corr_with_fleet_load": round(correlation(individual_series, consumption), 3)},
        {"level": "aggregated offers",
         "count": len(aggregates),
         "corr_with_fleet_load": round(correlation(aggregate_series, consumption), 3)},
    ]
    report("E10 — aggregated flex-offers remain load-shaped (paper §6)", rows)
    assert len(aggregates) < len(offers)
    # Aggregation must not destroy the correlation with the fleet load.
    assert correlation(aggregate_series, consumption) > 0.7 * correlation(
        individual_series, consumption
    )
    # Energy is preserved through aggregation (start-aligned sums).
    assert aggregate_series.total() == pytest.approx(individual_series.total(), rel=0.05)

"""E7 / §4.1: frequency-based appliance-level extraction.

Step 1's promised output — "a shortlist of the possibly used appliances,
their usage frequency, and the time flexibility" — is regenerated against
simulator ground truth (the paper's vacuum-robot example: daily use, 22 h
flexibility), and step 2's per-activation flex-offers are scored event-wise.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.evaluation.groundtruth import match_activations
from repro.api import create_extractor


def test_frequency_shortlist(benchmark, report, bench_nilm_trace):
    trace = bench_nilm_trace
    extractor = create_extractor("frequency-based")

    def extract():
        return extractor.extract(trace.total, np.random.default_rng(0))

    result = benchmark(extract)
    shortlist = result.extras["shortlist"]

    # Ground-truth frequencies from the activation log.
    days = trace.axis.length / trace.axis.intervals_per_day
    true_weekly = {}
    for act in trace.activations:
        true_weekly[act.appliance] = true_weekly.get(act.appliance, 0) + 1
    true_weekly = {k: v / (days / 7) for k, v in true_weekly.items()}

    rows = []
    for entry in shortlist:
        rows.append(
            {
                "appliance": entry.appliance,
                "mined_per_week": round(entry.frequency.uses_per_week, 2),
                "true_per_week": round(true_weekly.get(entry.appliance, 0.0), 2),
                "time_flex_h": round(entry.time_flexibility.total_seconds() / 3600, 1),
                "mean_kwh": round(entry.mean_energy_kwh, 2),
                "flexible": entry.flexible,
            }
        )
    report("E7 — step 1 shortlist: appliances, frequencies, flexibilities", rows)

    # The paper's worked example: the vacuum robot, daily, 22 h flexibility.
    if "vacuum-robot-x" in shortlist:
        entry = shortlist.get("vacuum-robot-x")
        assert entry.time_flexibility == timedelta(hours=22)
    # Mined frequencies track truth within a factor ~2 for shortlisted apps.
    for entry in shortlist:
        truth = true_weekly.get(entry.appliance)
        if truth and truth >= 1.0:
            assert entry.frequency.uses_per_week <= truth * 2.0


def test_frequency_based_event_accuracy(benchmark, report, bench_nilm_trace):
    trace = bench_nilm_trace
    extractor = create_extractor("frequency-based")
    result = benchmark.pedantic(
        lambda: extractor.extract(trace.total, np.random.default_rng(0)),
        rounds=1, iterations=1,
    )
    detections = [a for a in result.extras["detection"].detections if a.flexible]
    truth = [a for a in trace.activations if a.flexible]
    match = match_activations(detections, truth, start_tolerance=timedelta(minutes=30))
    report(
        "E7 — flexible-appliance detection quality (vs ground truth)",
        [
            {"precision": round(match.precision, 3),
             "recall": round(match.recall, 3),
             "f1": round(match.f1, 3),
             "start_error_min": round(match.start_error_minutes, 1),
             "energy_error_kwh": round(match.energy_error_kwh, 2)},
        ],
    )
    assert match.precision >= 0.6
    assert match.recall >= 0.4


def test_frequency_based_offers(benchmark, report, bench_nilm_trace):
    trace = bench_nilm_trace
    extractor = create_extractor("frequency-based")
    result = benchmark.pedantic(
        lambda: extractor.extract(trace.total, np.random.default_rng(0)),
        rounds=1, iterations=1,
    )
    true_flexible = sum(a.energy_kwh for a in trace.activations if a.flexible)
    report(
        "E7 — step 2 flex-offer output",
        [
            {"quantity": "offers (one per detected use)", "value": len(result.offers)},
            {"quantity": "extracted energy (kWh)", "value": round(result.extracted_energy, 2)},
            {"quantity": "true flexible energy (kWh)", "value": round(true_flexible, 2)},
            {"quantity": "conservation error", "value": round(result.energy_conservation_error(), 9)},
            {"quantity": "offers with appliance attribution", "value": sum(1 for o in result.offers if o.appliance)},
        ],
    )
    assert result.energy_conservation_error() < 1e-6
    assert all(o.appliance for o in result.offers)
    assert 0.35 * true_flexible <= result.extracted_energy <= 1.3 * true_flexible

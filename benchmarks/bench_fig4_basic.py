"""E2 / Figure 4: flex-offers from the basic extraction approach.

Figure 4 shows four flex-offers over one day, each occupying its own period,
with light (minimum) and dark (maximum) energy areas, and the text states
that "the total energy amount (the sum of the average required energy in the
profile intervals) is equal to the flexible part extracted from the input
time series" and "all of these attributes are within the required limits".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.extraction.basic import BasicExtractor
from repro.extraction.params import FlexOfferParams
from repro.flexoffer.validate import PolicyLimits, check_all
from repro.workloads.paper_day import figure5_day


def test_fig4_basic_extraction_day(benchmark, report):
    day = figure5_day()
    params = FlexOfferParams(flexible_share=0.05)
    extractor = BasicExtractor(params=params)

    def extract():
        return extractor.extract(day.series, np.random.default_rng(4))

    result = benchmark(extract)
    rows = []
    for k, offer in enumerate(result.offers, start=1):
        lo = sum(s.energy_min for s in offer.slices)
        hi = sum(s.energy_max for s in offer.slices)
        rows.append(
            {
                "offer": k,
                "earliest_start": offer.earliest_start.strftime("%H:%M"),
                "slices": len(offer.slices),
                "min_kwh (light)": round(lo, 3),
                "max_kwh (dark)": round(hi, 3),
                "avg_kwh": round(0.5 * (lo + hi), 3),
                "time_flex_h": round(offer.time_flexibility.total_seconds() / 3600, 2),
            }
        )
    report("Figure 4 — basic extraction, one offer per 6-hour period", rows)
    report(
        "Figure 4 — energy accounting",
        [
            {"quantity": "offers in the figure", "paper": 4, "measured": len(result.offers)},
            {"quantity": "sum of average energies == flexible part", "paper": "equal",
             "measured": f"error {result.energy_conservation_error():.2e} kWh"},
            {"quantity": "attributes within limits", "paper": "yes",
             "measured": "yes" if not check_all(result.offers, PolicyLimits(
                 max_slices=params.slices_max,
                 max_time_flexibility=params.time_flexibility_max)) else "NO"},
        ],
    )
    assert len(result.offers) == 4
    assert result.energy_conservation_error() < 1e-9


def test_fig4_basic_extraction_fleet_throughput(benchmark, bench_fleet):
    """Throughput of the basic extractor over a 20-household week."""
    extractor = BasicExtractor(params=FlexOfferParams(flexible_share=0.05))
    series = [t.metered() for t in bench_fleet.traces]

    def extract_all():
        rng = np.random.default_rng(0)
        return [extractor.extract(s, rng) for s in series]

    results = benchmark(extract_all)
    total_offers = sum(len(r.offers) for r in results)
    assert total_offers >= 4 * 7 * len(series) * 0.9  # ~4 per day each
    for r in results:
        assert r.energy_conservation_error() < 1e-6

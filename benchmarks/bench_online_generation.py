"""E12 (extension) / §6: real-time flex-offer generation.

The paper's closing direction — "generating flex-offers on the fly" — as a
measurable pipeline: train on two weeks of history, then (a) emit day-ahead
offers from mined habits and (b) detect appliance onsets in a live stream,
reporting detection latency against ground truth.
"""

from __future__ import annotations

from datetime import date, datetime, timedelta

import numpy as np
import pytest

from repro.extraction.online import OnlineFlexOfferGenerator
from repro.scheduling import greedy_schedule
from repro.simulation import HouseholdConfig, simulate_household
from repro.simulation.res import simulate_wind_production
from repro.timeseries.axis import axis_for_days
from repro.workloads.scenarios import SCENARIO_START, nilm_household


@pytest.fixture(scope="module")
def trained_generator():
    history = nilm_household(days=14, seed=3)
    return OnlineFlexOfferGenerator.train(history.total), history


def test_online_training(benchmark, report, trained_generator):
    _, history = trained_generator

    def train():
        return OnlineFlexOfferGenerator.train(history.total)

    generator = benchmark.pedantic(train, rounds=1, iterations=1)
    rows = [
        {"appliance": e.appliance,
         "uses_per_week": round(e.frequency.uses_per_week, 1),
         "flex_h": round(e.time_flexibility.total_seconds() / 3600, 1)}
        for e in generator.table.flexible_entries()
    ]
    report("E12 — online generator: learned flexible-appliance model", rows)
    assert generator.table.flexible_entries()


def test_anticipatory_day_ahead(benchmark, report, trained_generator):
    generator, _ = trained_generator
    target_day = date(2012, 3, 19)  # the Monday after training

    offers = benchmark(generator.anticipate, target_day)
    rows = [
        {"appliance": o.appliance,
         "window": f"{o.earliest_start:%H:%M}-{o.latest_start:%H:%M}",
         "energy_range_kwh": f"[{o.profile_energy_min:.2f}, {o.profile_energy_max:.2f}]",
         "created": f"{o.creation_time:%m-%d %H:%M}"}
        for o in offers
    ]
    report("E12 — day-ahead offers emitted before the day starts", rows)
    assert offers
    midnight = datetime(2012, 3, 19)
    for offer in offers:
        assert offer.creation_time < midnight

    # Day-ahead offers must flow into the MIRABEL scheduler unchanged.
    axis = axis_for_days(midnight, 2)
    wind = simulate_wind_production(axis, np.random.default_rng(5))
    target = wind * (sum(o.profile_energy_max for o in offers) / wind.total())
    plan = greedy_schedule(offers, target)
    assert len(plan.schedules) == len(offers)


def test_reactive_stream_latency(benchmark, report, trained_generator):
    generator, _ = trained_generator
    # A fresh evaluation day the generator has never seen.
    config = HouseholdConfig(
        household_id="stream-eval",
        appliances=("washing-machine-y", "dishwasher-z", "vacuum-robot-x"),
        noise_std_kw=0.0,
    )
    eval_trace = simulate_household(
        config, SCENARIO_START + timedelta(days=21), 2, np.random.default_rng(77)
    )
    truth = [a for a in eval_trace.activations if a.flexible]

    def stream():
        generator.reset_stream()
        emitted = []
        start = eval_trace.axis.start
        for minute, value in enumerate(eval_trace.total.values):
            when = start + timedelta(minutes=minute)
            for offer in generator.observe(when, float(value)):
                emitted.append((when, offer))
        return emitted

    emitted = benchmark.pedantic(stream, rounds=1, iterations=1)

    # Two-level scoring: *onset detection* (was any flexible appliance
    # genuinely running when we emitted?) per emission, and *per-run
    # latency* (how fast was each true run first flagged?).  Attribution
    # between wet appliances with near-identical heat-led onsets is
    # ambiguous from a 20-minute head — the same ambiguity the paper's §4
    # anticipates for NILM generally, so it is reported, not asserted.
    onset_hits = sum(
        1 for when, _ in emitted if any(a.start <= when <= a.end for a in truth)
    )
    rows = []
    detected_runs = 0
    for run in truth:
        inside = [
            (when, offer) for when, offer in emitted if run.start <= when <= run.end
        ]
        if inside:
            first_when, first_offer = inside[0]
            detected_runs += 1
            rows.append(
                {"true_run": f"{run.appliance} @ {run.start:%a %H:%M}",
                 "first_emission": f"{first_when:%H:%M}",
                 "claimed": first_offer.appliance,
                 "attribution": "ok" if first_offer.appliance == run.appliance else "confused",
                 "latency_min": round((first_when - run.start).total_seconds() / 60.0, 1)}
            )
        else:
            rows.append(
                {"true_run": f"{run.appliance} @ {run.start:%a %H:%M}",
                 "first_emission": "-", "claimed": "-", "attribution": "missed",
                 "latency_min": ""}
            )
    report(
        f"E12 — reactive detection ({len(truth)} true flexible runs, "
        f"{len(emitted)} emissions, {onset_hits} during live runs, "
        f"{detected_runs} runs detected)",
        rows,
    )
    assert emitted
    # Emissions overwhelmingly coincide with a genuinely running flexible
    # appliance (real-time flexibility detection — the §6 goal).
    assert onset_hits >= 0.7 * len(emitted)
    # Most true runs are flagged, and first flags arrive promptly.
    assert detected_runs >= 0.6 * len(truth)
    first_latencies = [r["latency_min"] for r in rows if r["latency_min"] != ""]
    # A run's first flag can be inherited from an overlapping earlier run;
    # the median latency is the robust promptness measure.
    assert float(np.median(first_latencies)) <= 25

"""E5 / §1 claim: "electricity consumption time series exhibit 0.1-6.5 % of
flexible demand" [7].

Sweeps the flexible-share parameter across the paper's band and verifies
that both household-level extractors deliver extracted/total ratios tracking
the requested share across the whole band (the extraction contract that
makes the MIRABEL evaluation trustworthy).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.extraction.basic import BasicExtractor
from repro.extraction.params import FlexOfferParams
from repro.extraction.peaks import PeakBasedExtractor

#: The paper's band of flexible demand shares.
SHARES = (0.001, 0.005, 0.01, 0.02, 0.035, 0.05, 0.065)


def _sweep(extractor_cls, series, seeds=(0, 1, 2)):
    rows = []
    for share in SHARES:
        extractor = extractor_cls(params=FlexOfferParams(flexible_share=share))
        realised = []
        for seed in seeds:
            result = extractor.extract(series, np.random.default_rng(seed))
            realised.append(result.extracted_share)
        rows.append(
            {
                "requested_share": share,
                "extracted_share": round(float(np.mean(realised)), 5),
                "relative_error": round(
                    abs(float(np.mean(realised)) - share) / share, 4
                ),
            }
        )
    return rows


def test_flexshare_sweep_basic(benchmark, report, bench_fleet):
    series = bench_fleet.traces[0].metered()
    rows = benchmark(_sweep, BasicExtractor, series)
    report("E5 — flexible share sweep 0.1%-6.5% (basic approach)", rows)
    for row in rows:
        assert row["extracted_share"] == pytest.approx(
            row["requested_share"], rel=0.1
        )


def test_flexshare_sweep_peak_based(benchmark, report, bench_fleet):
    series = bench_fleet.traces[0].metered()
    rows = benchmark(_sweep, PeakBasedExtractor, series)
    report("E5 — flexible share sweep 0.1%-6.5% (peak-based approach)", rows)
    # Peak-based skips days whose peaks all fall below the filter; across
    # the paper band the realised share must still track the request.
    for row in rows:
        assert row["extracted_share"] <= row["requested_share"] * 1.05
        assert row["extracted_share"] >= row["requested_share"] * 0.5


def test_flexshare_band_is_respected_fleet_wide(benchmark, report, bench_fleet):
    """At the paper's 5 % setting, fleet-wide extraction sits in the band."""
    extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))

    def extract_fleet():
        return [
            extractor.extract(trace.metered(), np.random.default_rng(1)).extracted_share
            for trace in bench_fleet.traces
        ]

    shares = benchmark.pedantic(extract_fleet, rounds=1, iterations=1)
    report(
        "E5 — fleet-wide extracted share at the 5% setting",
        [
            {"households": len(shares),
             "mean_share": round(float(np.mean(shares)), 4),
             "min_share": round(float(np.min(shares)), 4),
             "max_share": round(float(np.max(shares)), 4),
             "paper_band": "0.001 - 0.065"},
        ],
    )
    assert 0.001 <= float(np.mean(shares)) <= 0.065

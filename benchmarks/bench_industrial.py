"""E13 (extension) / §6: flexibility extraction from industrial consumers.

"Further research directions include flexibility extraction from industrial
consumers."  The factory simulator produces MWh-scale traces with shiftable
batch processes; this bench shows the household-level and appliance-level
extractors running unchanged at industrial scale, plus the production-side
offers (§6's wind producer and dispatchable plant).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.extraction import (
    DispatchableProductionExtractor,
    FlexOfferParams,
    FrequencyBasedExtractor,
    PeakBasedExtractor,
    WindProductionExtractor,
)
from repro.scheduling import greedy_schedule
from repro.simulation import FactoryConfig, simulate_factory
from repro.simulation.industrial import industrial_catalogue
from repro.simulation.res import simulate_wind_production
from repro.timeseries.series import TimeSeries
from repro.workloads.scenarios import SCENARIO_START


@pytest.fixture(scope="module")
def factory_trace():
    return simulate_factory(
        FactoryConfig(factory_id="plant-1"), SCENARIO_START, 7,
        np.random.default_rng(0),
    )


def test_industrial_peak_extraction(benchmark, report, factory_trace):
    metered = factory_trace.metered()
    extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))

    def extract():
        return extractor.extract(metered, np.random.default_rng(1))

    result = benchmark(extract)
    report(
        "E13 — peak-based extraction on a factory (household code, MWh scale)",
        [
            {"quantity": "weekly consumption (MWh)", "value": round(metered.total() / 1000, 2)},
            {"quantity": "true flexible share", "value": round(factory_trace.flexible_share, 3)},
            {"quantity": "offers (one per day)", "value": len(result.offers)},
            {"quantity": "extracted energy (kWh)", "value": round(result.extracted_energy, 1)},
            {"quantity": "largest offer (kWh)", "value": round(
                max(o.profile_energy_max for o in result.offers), 1)},
            {"quantity": "conservation error (kWh)", "value": round(
                result.energy_conservation_error(), 9)},
        ],
    )
    assert result.energy_conservation_error() < 1e-6
    assert max(o.profile_energy_max for o in result.offers) > 50.0


def test_industrial_process_detection(benchmark, report, factory_trace):
    extractor = FrequencyBasedExtractor(database=industrial_catalogue())

    def extract():
        return extractor.extract(factory_trace.total, np.random.default_rng(1))

    result = benchmark.pedantic(extract, rounds=1, iterations=1)
    shortlist = result.extras["shortlist"]
    true_runs = {}
    for act in factory_trace.activations:
        true_runs[act.appliance] = true_runs.get(act.appliance, 0) + 1
    rows = [
        {"process": e.appliance,
         "mined_per_week": round(e.frequency.uses_per_week, 1),
         "true_runs": true_runs.get(e.appliance, 0),
         "flex_h": round(e.time_flexibility.total_seconds() / 3600, 1),
         "mean_kwh": round(e.mean_energy_kwh, 1)}
        for e in shortlist
    ]
    report("E13 — industrial process shortlist (frequency-based step 1)", rows)
    assert {e.appliance for e in shortlist} & set(true_runs)


def test_production_offers_close_the_loop(benchmark, report, factory_trace):
    """§6's full spectrum: consumption + wind + dispatchable production."""
    metered = factory_trace.metered()
    axis = metered.axis
    consumption_offers = PeakBasedExtractor(
        params=FlexOfferParams(flexible_share=0.05)
    ).extract(metered, np.random.default_rng(1)).offers

    wind = simulate_wind_production(axis, np.random.default_rng(2))
    wind = wind * (2.0 * sum(o.profile_energy_max for o in consumption_offers) / wind.total())
    wind_offers = WindProductionExtractor().extract(wind, np.random.default_rng(0)).offers
    dispatch_offers = DispatchableProductionExtractor(capacity_kw=100.0).extract(
        TimeSeries.zeros(axis), np.random.default_rng(0)
    ).offers

    zero = TimeSeries.zeros(axis)

    def schedule_mixed():
        return greedy_schedule(consumption_offers + wind_offers + dispatch_offers, zero)

    mixed = benchmark.pedantic(schedule_mixed, rounds=1, iterations=1)
    production_only = greedy_schedule(wind_offers + dispatch_offers, zero)
    rows = [
        {"pool": "production offers only",
         "offers": len(wind_offers) + len(dispatch_offers),
         "net_sq_imbalance": round(production_only.cost, 2)},
        {"pool": "production + flexible consumption",
         "offers": len(wind_offers) + len(dispatch_offers) + len(consumption_offers),
         "net_sq_imbalance": round(mixed.cost, 2)},
    ]
    report("E13 — mixed consumption/production scheduling (net balance)", rows)
    # Shiftable consumption soaks production peaks: net imbalance drops.
    assert mixed.cost < production_only.cost

"""Benchmark fixtures: visible reporting plus shared cached scenarios.

Every bench prints the paper-vs-measured rows it regenerates (through
``capsys.disabled`` so the tables appear even under pytest's capture), and
asserts the *shape* of the paper's result — who wins, by roughly what factor,
where the crossovers fall.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.realism import format_table
from repro.workloads.scenarios import (
    nilm_household,
    small_fleet,
    tariff_study,
    weekend_skewed_household,
)


@pytest.fixture()
def report(capsys):
    """Print a titled table (list of dict rows) bypassing pytest capture."""

    def _report(title: str, rows=None, lines=None) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            if rows is not None:
                print(format_table(rows))
            if lines is not None:
                for line in lines:
                    print(line)

    return _report


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(20130318)  # EDBT/ICDT 2013 workshop date


@pytest.fixture(scope="session")
def bench_fleet():
    """20 households x 7 days: the comparison/aggregation workload."""
    return small_fleet(n=20, days=7, seed=13)


@pytest.fixture(scope="session")
def bench_nilm_trace():
    """14-day five-appliance household for appliance-level benches."""
    return nilm_household(days=14, seed=3)


@pytest.fixture(scope="session")
def bench_weekend_trace():
    """28-day weekend-skewed household for the schedule bench."""
    return weekend_skewed_household(days=28, seed=11)


@pytest.fixture(scope="session")
def bench_tariff_study():
    """28-day paired tariff study for the multi-tariff bench."""
    return tariff_study(days=28, seed=9)

"""Benchmark fixtures: visible reporting plus shared cached scenarios.

Every bench prints the paper-vs-measured rows it regenerates (through
``capsys.disabled`` so the tables appear even under pytest's capture), and
asserts the *shape* of the paper's result — who wins, by roughly what factor,
where the crossovers fall.

Passing ``--bench-json PATH`` additionally writes every reported table to
``PATH`` as JSON (one record per report call), so CI can archive benchmark
output machine-readably.  (The name avoids ``--benchmark-json``, which
pytest-benchmark already claims for its own timing dump.)
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.evaluation.realism import format_table
from repro.workloads.scenarios import (
    nilm_household,
    small_fleet,
    tariff_study,
    weekend_skewed_household,
)


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write all reported benchmark tables to PATH as JSON",
    )


def pytest_configure(config):
    config._bench_json_records = []


def pytest_sessionfinish(session):
    path = session.config.getoption("--bench-json")
    records = getattr(session.config, "_bench_json_records", None)
    if path and records is not None:
        Path(path).write_text(json.dumps(records, indent=2, default=str) + "\n")


@pytest.fixture()
def report(capsys, request):
    """Print a titled table (list of dict rows) bypassing pytest capture.

    Each call is also recorded for the optional ``--bench-json`` writer.
    """

    def _report(title: str, rows=None, lines=None) -> None:
        request.config._bench_json_records.append(
            {
                "test": request.node.nodeid,
                "title": title,
                "rows": rows,
                "lines": lines,
            }
        )
        with capsys.disabled():
            print(f"\n=== {title} ===")
            if rows is not None:
                print(format_table(rows))
            if lines is not None:
                for line in lines:
                    print(line)

    return _report


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(20130318)  # EDBT/ICDT 2013 workshop date


@pytest.fixture(scope="session")
def bench_fleet():
    """20 households x 7 days: the comparison/aggregation workload."""
    return small_fleet(n=20, days=7, seed=13)


@pytest.fixture(scope="session")
def bench_nilm_trace():
    """14-day five-appliance household for appliance-level benches."""
    return nilm_household(days=14, seed=3)


@pytest.fixture(scope="session")
def bench_weekend_trace():
    """28-day weekend-skewed household for the schedule bench."""
    return weekend_skewed_household(days=28, seed=11)


@pytest.fixture(scope="session")
def bench_tariff_study():
    """28-day paired tariff study for the multi-tariff bench."""
    return tariff_study(days=28, seed=9)

"""E3 / Figure 5: the peak-based extraction walkthrough, number for number.

The paper prints: eight peaks sized 0.47, 1.5, 0.48, 0.48, 1.85, 2.22, 5.47,
0.48 kWh on a 39.02 kWh day; a 5 % flexible share giving the 1.951 kWh filter
threshold; peaks 6 and 7 surviving with selection probabilities 29 % / 71 %.
This bench regenerates all of it on the reconstructed day and benchmarks
each phase (detection, filtering, selection, full extraction).
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.extraction.params import FlexOfferParams
from repro.extraction.peaks import (
    PeakBasedExtractor,
    detect_peaks,
    filter_peaks,
    select_peak,
    selection_probabilities,
)
from repro.workloads.paper_day import (
    FIGURE5_FILTER_THRESHOLD,
    FIGURE5_PEAK_SIZES,
    figure5_day,
)


def test_fig5_peak_detection(benchmark, report):
    day = figure5_day()
    peaks = benchmark(detect_peaks, day.series.values)
    rows = [
        {
            "peak": i + 1,
            "paper_size_kwh": FIGURE5_PEAK_SIZES[i],
            "measured_size_kwh": round(p.size, 2),
            "start_interval": p.first,
            "width": p.length,
        }
        for i, p in enumerate(peaks)
    ]
    report(
        "Figure 5 — peak detection (day total "
        f"{day.series.total():.2f} kWh, mean threshold {day.mean_threshold:.4f})",
        rows,
    )
    assert [round(p.size, 2) for p in peaks] == list(FIGURE5_PEAK_SIZES)


def test_fig5_filtering(benchmark, report):
    day = figure5_day()
    peaks = detect_peaks(day.series.values)
    survivors = benchmark(filter_peaks, peaks, FIGURE5_FILTER_THRESHOLD)
    probs = selection_probabilities(survivors)
    rows = [
        {"quantity": "flexible part (5% x 39.02)", "paper": 1.951,
         "measured": round(0.05 * day.series.total(), 3)},
        {"quantity": "surviving peaks", "paper": "6, 7", "measured": "6, 7"},
        {"quantity": "P(peak 6)", "paper": "29%", "measured": f"{probs[0]:.1%}"},
        {"quantity": "P(peak 7)", "paper": "71%", "measured": f"{probs[1]:.1%}"},
    ]
    report("Figure 5 — filtering and selection probabilities", rows)
    assert [round(p.size, 2) for p in survivors] == [2.22, 5.47]
    assert probs[0] == pytest.approx(0.29, abs=0.005)
    assert probs[1] == pytest.approx(0.71, abs=0.005)


def test_fig5_monte_carlo_selection(benchmark, report):
    day = figure5_day()
    survivors = filter_peaks(detect_peaks(day.series.values), FIGURE5_FILTER_THRESHOLD)

    def run_selection():
        rng = np.random.default_rng(42)
        return Counter(round(select_peak(survivors, rng).size, 2) for _ in range(2000))

    picks = benchmark(run_selection)
    share_7 = picks[5.47] / 2000
    report(
        "Figure 5 — Monte-Carlo peak selection (2000 draws)",
        [
            {"peak": 6, "paper_probability": 0.29, "empirical": round(1 - share_7, 3)},
            {"peak": 7, "paper_probability": 0.71, "empirical": round(share_7, 3)},
        ],
    )
    assert share_7 == pytest.approx(0.71, abs=0.03)


def test_fig5_full_extraction(benchmark, report):
    day = figure5_day()
    extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))

    def extract():
        return extractor.extract(day.series, np.random.default_rng(7))

    result = benchmark(extract)
    offer = result.offers[0]
    report(
        "Figure 5 — end-to-end peak-based extraction",
        [
            {"quantity": "offers per day", "paper": 1, "measured": len(result.offers)},
            {"quantity": "extracted energy (kWh)", "paper": 1.951,
             "measured": round(result.extracted_energy, 3)},
            {"quantity": "conservation error (kWh)", "paper": 0.0,
             "measured": round(result.energy_conservation_error(), 12)},
            {"quantity": "offer start interval", "paper": "on peak 6 or 7",
             "measured": day.series.axis.index_of(offer.earliest_start)},
        ],
    )
    assert len(result.offers) == 1
    assert result.extracted_energy == pytest.approx(1.951, rel=1e-6)

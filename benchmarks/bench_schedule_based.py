"""E8 / §4.2: schedule-based extraction with mined habits.

The paper's motivating example — "the dishwasher is more used during the
weekends since the family eats at home more often than during the workdays"
— is planted in the simulated household (weekend-skewed dishwasher) and must
come back out of the schedule miner; the extracted offers must confine their
time flexibility to the mined habit windows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.extraction.frequency_based import FrequencyBasedExtractor
from repro.extraction.schedule_based import ScheduleBasedExtractor
from repro.timeseries.calendar import DayType


def test_schedule_mining_finds_weekend_skew(benchmark, report, bench_weekend_trace):
    trace = bench_weekend_trace
    extractor = ScheduleBasedExtractor()

    def extract():
        return extractor.extract(trace.total, np.random.default_rng(0))

    result = benchmark(extract)
    schedules = result.extras["schedules"]

    # Ground-truth dishwasher day-type rates.
    from repro.timeseries.calendar import day_type

    truth = {t: 0 for t in DayType}
    day_counts = {t: 0 for t in DayType}
    for day_no in range(28):
        from datetime import timedelta

        date = (trace.axis.start + timedelta(days=day_no)).date()
        day_counts[day_type(date)] += 1
    for act in trace.activations:
        if act.appliance == "dishwasher-z":
            truth[day_type(act.start.date())] += 1
    truth_rate = {
        t: truth[t] / day_counts[t] if day_counts[t] else 0.0 for t in DayType
    }

    rows = []
    if "dishwasher-z" in schedules:
        mined = schedules["dishwasher-z"]
        for t in DayType:
            rows.append(
                {
                    "day_type": t.value,
                    "true_starts_per_day": round(truth_rate[t], 2),
                    "mined_starts_per_day": round(mined.expected_starts(t), 2),
                    "mined_windows": len(mined.windows[t]),
                }
            )
    report("E8 — mined dishwasher schedule vs planted weekend skew", rows)

    if "dishwasher-z" in schedules:
        mined = schedules["dishwasher-z"]
        weekend_rate = 0.5 * (
            mined.expected_starts(DayType.SATURDAY) + mined.expected_starts(DayType.SUNDAY)
        )
        # The planted skew (1.8x weekend weight) must survive mining whenever
        # the weekend usage truly materialised in this sample.
        if truth_rate[DayType.SATURDAY] > truth_rate[DayType.WORKDAY]:
            assert weekend_rate > mined.expected_starts(DayType.WORKDAY) * 0.9


def test_schedule_offers_habit_confined(benchmark, report, bench_weekend_trace):
    """Schedule-based time flexibility <= frequency-based (habits tighten)."""
    trace = bench_weekend_trace
    freq_result = FrequencyBasedExtractor().extract(trace.total, np.random.default_rng(0))
    sched_result = benchmark.pedantic(
        lambda: ScheduleBasedExtractor().extract(trace.total, np.random.default_rng(0)),
        rounds=1, iterations=1,
    )

    def mean_flex_hours(offers):
        if not offers:
            return 0.0
        return float(
            np.mean([o.time_flexibility.total_seconds() / 3600 for o in offers])
        )

    rows = [
        {"approach": "frequency-based (§4.1)",
         "offers": len(freq_result.offers),
         "mean_time_flex_h": round(mean_flex_hours(freq_result.offers), 2)},
        {"approach": "schedule-based (§4.2)",
         "offers": len(sched_result.offers),
         "mean_time_flex_h": round(mean_flex_hours(sched_result.offers), 2)},
    ]
    report("E8 — habit-confined vs manufacturer time flexibility", rows)
    assert mean_flex_hours(sched_result.offers) <= mean_flex_hours(freq_result.offers) + 1e-9
    assert sched_result.energy_conservation_error() < 1e-6

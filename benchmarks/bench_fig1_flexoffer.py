"""E1 / Figure 1: the electric-vehicle flex-offer and its derived attributes.

Regenerates every number printed in the figure — earliest start 22:00,
latest start 05:00, latest end 07:00, 2-hour profile of eight 15-minute
slices, 50 kWh total — and benchmarks flex-offer construction, validation
and schedule materialisation throughput.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.flexoffer.model import figure1_flexoffer
from repro.flexoffer.schedule import default_schedule
from repro.flexoffer.validate import PolicyLimits
from repro.timeseries.axis import axis_for_days

DAY = datetime(2012, 3, 5)


def test_figure1_attributes(benchmark, report):
    offer = benchmark(figure1_flexoffer, DAY)
    tmin, tmax = offer.effective_total_bounds()
    rows = [
        {"attribute": "earliest start", "paper": "10 PM", "measured": offer.earliest_start.strftime("%I %p").lstrip("0")},
        {"attribute": "latest start", "paper": "5 AM", "measured": offer.latest_start.strftime("%I %p").lstrip("0")},
        {"attribute": "latest end", "paper": "7 AM", "measured": offer.latest_end.strftime("%I %p").lstrip("0")},
        {"attribute": "profile duration", "paper": "2 h", "measured": f"{offer.duration.total_seconds() / 3600:.0f} h"},
        {"attribute": "slices (15 min)", "paper": "8", "measured": str(offer.profile_intervals)},
        {"attribute": "required energy", "paper": "50 kWh", "measured": f"{0.5 * (tmin + tmax):.0f} kWh"},
        {"attribute": "start flexibility", "paper": "7 h", "measured": f"{offer.time_flexibility.total_seconds() / 3600:.0f} h"},
    ]
    report("Figure 1 — EV charging flex-offer", rows)
    assert offer.earliest_start == DAY.replace(hour=22)
    assert offer.latest_start == DAY.replace(hour=5) + timedelta(days=1)
    assert offer.latest_end == DAY.replace(hour=7) + timedelta(days=1)
    assert tmin == pytest.approx(50.0)


def test_figure1_schedule_materialisation(benchmark):
    offer = figure1_flexoffer(DAY)
    axis = axis_for_days(DAY, 2)

    def place():
        return default_schedule(offer).to_series(axis)

    series = benchmark(place)
    assert series.total() == pytest.approx(50.0)


def test_figure1_policy_validation_throughput(benchmark):
    offers = [figure1_flexoffer(DAY + timedelta(days=d)) for d in range(100)]
    limits = PolicyLimits(max_slices=96)

    def validate():
        return [limits.check(o) for o in offers]

    problems = benchmark(validate)
    assert all(p == [] for p in problems)

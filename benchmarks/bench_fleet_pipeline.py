"""Fleet-pipeline benchmark: batched engine vs the sequential loop (§6 scale).

"Individual flex-offers have to be aggregated from thousands consumers
before the actual scheduling" — the batched :class:`FleetPipeline` is the
throughput answer.  This bench runs the canonical 20-household × 7-day
workload, asserts the batched result is identical to the per-household
sequential path, requires a ≥5× wall-clock speedup over the seed-shaped
reference loop, and refreshes the repository's ``BENCH_fleet.json``
baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.pipeline import run_fleet_benchmark, stage_table_rows

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"


def test_fleet_pipeline_speedup_and_equivalence(report):
    bench_report, result = run_fleet_benchmark(
        n_households=20, days=7, seed=13, out_path=BENCH_JSON
    )
    report(
        "Fleet pipeline — 20 households x 7 days, per-stage wall clock",
        stage_table_rows(bench_report, result),
    )
    report(
        "Fleet pipeline — summary",
        [
            {
                "offers": bench_report["pipeline"]["offers"],
                "aggregates": bench_report["pipeline"]["aggregates"],
                "extracted_kwh": bench_report["pipeline"]["extracted_kwh"],
                "speedup": f"{bench_report['speedup']}x",
                "baseline_s": bench_report["baseline"]["wall_seconds"],
                "pipeline_s": bench_report["pipeline"]["wall_seconds"],
            }
        ],
    )

    equivalence = bench_report["equivalence"]
    # Batching must never change results: bitwise identical offers
    # (modulo process-global offer ids).
    assert equivalence["batched_equals_sequential"] is True
    # Reference-vs-vectorized agreement is recorded in the JSON baseline but
    # not hard-gated: the engines may legitimately flip near-tie greedy
    # picks on platforms with a different FFT round-off profile.
    assert "reference_matches_vectorized" in equivalence
    # The batched path must beat the seed-shaped sequential loop >= 5x.
    assert bench_report["speedup"] >= 5.0
    assert BENCH_JSON.exists()


def test_fleet_pipeline_worker_fanout_equivalent(report):
    # Chunking and worker fan-out are pure execution detail: a 2-worker run
    # on a small fleet must reproduce the inline result exactly.
    from datetime import datetime

    from repro.api import create_extractor
    from repro.pipeline import FleetPipeline, offers_equivalent, run_sequential
    from repro.simulation.dataset import generate_fleet

    fleet = generate_fleet(4, datetime(2012, 3, 5), 2, seed=3)
    extractor = create_extractor("peak-based", flexible_share=0.05)
    fanned = FleetPipeline(extractor, chunk_size=1, workers=2).run(fleet)
    sequential = run_sequential(fleet, extractor)
    assert offers_equivalent(fanned.offers, sequential.offers)
    # Workers mint ids in pid-disjoint namespaces: no collisions.
    ids = [offer.offer_id for offer in fanned.offers]
    assert len(set(ids)) == len(ids)
    report(
        "Fleet pipeline — worker fan-out determinism",
        [
            {
                "workers": 2,
                "chunks": 4,
                "offers": len(fanned.offers),
                "identical_to_sequential": True,
            }
        ],
    )

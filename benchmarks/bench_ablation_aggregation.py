"""Ablation: aggregation grouping grid resolution (paper [4] trade-off).

Finer grouping grids preserve member flexibility (better schedules) but
produce more aggregates (slower scheduling); coarser grids compress harder
at the cost of flexibility lost to the min-rule.  This bench sweeps the grid
and reports group counts, retained flexibility and scheduling quality.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.aggregation import GroupingParams, aggregate_all, group_offers
from repro.evaluation.comparison import collect_offers
from repro.extraction import FlexOfferParams, PeakBasedExtractor
from repro.scheduling import greedy_schedule
from repro.simulation.res import simulate_wind_production

GRIDS = {
    "fine (30 min / 1 h)": GroupingParams(
        start_tolerance=timedelta(minutes=30), flexibility_tolerance=timedelta(hours=1)
    ),
    "default (2 h / 4 h)": GroupingParams(),
    "coarse (6 h / 12 h)": GroupingParams(
        start_tolerance=timedelta(hours=6), flexibility_tolerance=timedelta(hours=12)
    ),
    "very coarse (24 h / 24 h)": GroupingParams(
        start_tolerance=timedelta(hours=24), flexibility_tolerance=timedelta(hours=24)
    ),
}


def test_grouping_grid_ablation(benchmark, report, bench_fleet):
    params = FlexOfferParams(flexible_share=0.05)
    offers = collect_offers(bench_fleet.traces, PeakBasedExtractor(params=params))
    axis = bench_fleet.metering_axis()
    wind = simulate_wind_production(axis, np.random.default_rng(2))
    total_flex = sum(o.profile_energy_max for o in offers)
    target = wind * (total_flex / wind.total())

    def sweep():
        out = {}
        for name, grid in GRIDS.items():
            aggregates = aggregate_all(group_offers(offers, grid))
            member_flex = sum(
                (o.time_flexibility.total_seconds() for o in offers)
            )
            retained_flex = sum(
                a.offer.time_flexibility.total_seconds() * a.size for a in aggregates
            )
            cost = greedy_schedule([a.offer for a in aggregates], target).cost
            out[name] = (len(aggregates), retained_flex / member_flex, cost)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    individual_cost = greedy_schedule(offers, target).cost
    rows = [
        {"grid": name,
         "aggregates": count,
         "compression": f"{len(offers)}->{count}",
         "flexibility_retained": round(retained, 3),
         "sq_imbalance": round(cost, 2),
         "vs_individual": f"{cost / individual_cost:.2f}x"}
        for name, (count, retained, cost) in results.items()
    ]
    report(
        f"Ablation — grouping grid ({len(offers)} offers, individual cost "
        f"{individual_cost:.2f})",
        rows,
    )

    counts = [results[name][0] for name in GRIDS]
    assert counts == sorted(counts, reverse=True)  # coarser => fewer groups
    retained = [results[name][1] for name in GRIDS]
    assert retained[0] >= retained[-1] - 1e-9      # finer => more flexibility
    # Even the coarsest grid must stay within 3x of individual scheduling.
    assert results["very coarse (24 h / 24 h)"][2] <= individual_cost * 3.0

"""Market-clearing benchmark: batched bid derivation vs scalar reference.

The priced 220-aggregate suite (EV-fleet-scale profiles, four price-banded
zones, 25 kWh couplings) cleared under both engines.  Asserts the
vectorized engine is ≥3× the ``engine="reference"`` scalar loops with
*identical* acceptance sets, bitwise-equal clearing prices, quantities and
payments, welfare reconciled at 1e-9, and payments equal to revenue
(budget balance) — then refreshes the repository's ``BENCH_market.json``
baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.market import market_table_rows, run_market_benchmark

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_market.json"

#: The acceptance gate: batched derivation + array walk vs scalar loops.
MARKET_SPEEDUP_GATE = 3.0


def test_market_speedup_and_equivalence(report):
    bench_report, result = run_market_benchmark(out_path=BENCH_JSON)
    report(
        "Market clearing — 220 aggregates x 4 zones x 8 market slices",
        market_table_rows(bench_report),
    )
    clearing = bench_report["clearing"]
    report(
        "Market clearing — engine timings",
        [
            {"engine": name, "seconds": clearing[f"{name}_seconds"]}
            for name in ("reference", "vectorized")
        ],
    )

    workload = bench_report["workload"]
    assert workload["aggregates"] >= 200
    assert workload["zones"] == 4
    # Both assignment paths must actually be exercised.
    assert 0 < workload["mapped_keys"] < workload["aggregates"]
    # Fleet-scale profiles: this is where batched derivation matters.
    assert workload["avg_profile_slices"] >= 20

    equivalence = bench_report["equivalence"]
    # The engine contract: decisions are made on bitwise-identical floats,
    # so the acceptance sets cannot diverge — and don't.
    assert equivalence["acceptance_identical"] is True
    assert equivalence["settlements_identical"] is True
    assert equivalence["prices_identical"] is True
    # Welfare is the only engine-specific arithmetic (valuation integral).
    assert equivalence["welfare_match"] is True
    # Uniform pricing settles every bid at the slice price: money in = out.
    assert equivalence["budget_balanced"] is True

    # The acceptance gate: ≥3x over the reference scalar loops.
    assert clearing["speedup"] >= MARKET_SPEEDUP_GATE

    # The auction does real work on this suite: every disposition occurs.
    assert clearing["accepted"] > 0
    assert clearing["partial"] > 0
    assert clearing["rejected"] > 0
    assert clearing["migrated"] > 0
    assert result.welfare_eur > 0
    assert BENCH_JSON.exists()

"""Scale-out benchmark: the million-household path, measured end to end.

A small-ladder run of the four scale-out claims (the committed
``BENCH_scale.json`` carries the full 1k/10k/100k ladder):

* streaming throughput — households/second through the full
  stream → aggregate (``keep_members=False``) → autotuned schedule loop;
* shared-memory fan-out — dispatching workers a buffer name + row range
  beats pickling matrix slices by ≥2× on one fleet matrix;
* O(chunk) aggregation memory — tripling the household count barely moves
  the streaming aggregator's tracemalloc peak, and the streaming path
  stays under materializing the offer list;
* engine crossover — a sparse rung where ``engine="incremental"``
  measurably beats ``engine="vectorized"`` and ``engine="auto"`` picks
  it, with placements bitwise identical on every rung.

Kept deliberately below the committed baseline's sizes so the tier-1 run
stays fast; ``repro bench --suite scale --out BENCH_scale.json``
refreshes the real ladder.
"""

from __future__ import annotations

from repro.pipeline import run_scale_benchmark, scale_table_rows


def test_scale_throughput_fanout_memory_and_crossover(report):
    bench_report = run_scale_benchmark(
        sizes=(500, 2_000),
        fanout_households=4_000,
        sweep_repeats=2,
    )
    report(
        "Scale-out — stream -> aggregate -> autotuned schedule",
        scale_table_rows(bench_report),
    )
    report(
        "Scale-out — engine-crossover density ladder",
        [
            {
                "days": row["axis_days"],
                "density": round(row["density"], 2),
                "vectorized_s": row["vectorized_seconds"],
                "incremental_s": row["incremental_seconds"],
                "winner": row["measured_winner"],
                "auto": row["auto_choice"],
            }
            for row in bench_report["crossover"]["rows"]
        ],
    )

    for rung in bench_report["throughput"]:
        assert rung["households_per_second"] > 0
        assert rung["placed"] + rung["unplaced"] == rung["aggregates"]

    # Shared-memory fan-out: same results, ≥2x faster than pickling.
    fanout = bench_report["fanout"]
    assert fanout["results_identical"] is True
    assert fanout["meets_min_speedup"] is True

    # Streaming aggregation peak memory is chunk-bound, not offer-bound.
    streaming = bench_report["streaming"]
    assert streaming["peak_is_chunk_bound"] is True
    assert streaming["peak_growth_at_3x_households"] < 2.0

    # The autotuner's contract: auto agrees with the measured winner on
    # both ends of the density ladder, and the choice never changes
    # placements (bitwise engine equivalence on every rung).
    crossover = bench_report["crossover"]
    assert crossover["sparse_winner_is_incremental"] is True
    assert crossover["auto_picks_sparse_winner"] is True
    assert crossover["auto_picks_dense_winner"] is True
    assert crossover["all_rungs_bitwise_identical"] is True

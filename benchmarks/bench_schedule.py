"""Scheduling benchmark: vectorized placement vs the reference loop.

The market-facing half of the extract→aggregate→schedule loop on its own:
220 aggregated flex-offers placed over a week-long wind-surplus target.
Asserts the vectorized greedy engine is ≥5× the ``engine="reference"``
per-start loop with identical placements and ``rtol=1e-9`` cost/energy
equivalence, that the stochastic improver is bitwise identical across
engines, and refreshes the repository's ``BENCH_schedule.json`` baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.scheduling import run_schedule_benchmark, schedule_table_rows

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_schedule.json"


def test_schedule_speedup_and_equivalence(report):
    bench_report, result = run_schedule_benchmark(out_path=BENCH_JSON)
    report(
        "Schedule engine — 220 aggregates x 1 week target",
        schedule_table_rows(bench_report),
    )
    report(
        "Schedule engine — summary",
        [
            {
                "aggregates": bench_report["workload"]["aggregates"],
                "target_kwh": bench_report["target"]["total_kwh"],
                "greedy_speedup": f"{bench_report['greedy']['speedup']}x",
                "improve_speedup": f"{bench_report['improve']['speedup']}x",
                "improvement": bench_report["greedy"]["improvement"],
            }
        ],
    )

    workload = bench_report["workload"]
    assert workload["aggregates"] >= 200

    equivalence = bench_report["equivalence"]
    # The two engines must make identical placements and agree on cost and
    # slice energies to rtol=1e-9 (they differ only in summation order).
    assert equivalence["placements_identical"] is True
    assert equivalence["cost_match"] is True
    assert equivalence["energies_match"] is True
    # The stochastic improver consumes the generator identically under both
    # engines, so it must agree bitwise.
    assert bench_report["improve"]["identical"] is True
    # The vectorized placement search must beat the reference loop >= 5x.
    assert bench_report["greedy"]["speedup"] >= 5.0
    # Scheduling must actually track the target (the greedy win over
    # scheduling nothing is the BIOMA 2012 shape).
    assert bench_report["greedy"]["improvement"] > 0.3
    assert result.cost < result.baseline_cost
    assert BENCH_JSON.exists()

"""Substrate bench: forecasting accuracy (paper [6]'s role in MIRABEL).

Backtests the model zoo on simulated household consumption and wind
production, and closes the loop the paper describes: scheduling against
*forecast* surplus and measuring the realised imbalance against scheduling
with perfect foresight.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.comparison import collect_offers
from repro.extraction import FlexOfferParams, PeakBasedExtractor
from repro.forecasting.evaluate import rolling_backtest
from repro.forecasting.models import (
    autoregressive,
    holt_winters,
    persistence,
    seasonal_naive,
)
from repro.scheduling import greedy_schedule, squared_imbalance
from repro.simulation.res import simulate_wind_production

MODELS = {
    "persistence": persistence,
    "seasonal-naive": seasonal_naive,
    "holt-winters": holt_winters,
    "ar(8)": autoregressive,
}


def test_consumption_forecast_backtest(benchmark, report, bench_fleet):
    series = bench_fleet.aggregate_metered()

    def backtest_all():
        return {
            name: rolling_backtest(fn, series, train_intervals=96 * 4, horizon=96, name=name)
            for name, fn in MODELS.items()
        }

    reports = benchmark.pedantic(backtest_all, rounds=1, iterations=1)
    rows = [
        {"model": name, "folds": r.folds, "MAE": round(r.mae, 4),
         "RMSE": round(r.rmse, 4), "MAPE": round(r.mape, 3)}
        for name, r in reports.items()
    ]
    report("Forecasting — day-ahead fleet consumption backtest", rows)
    # Seasonal structure dominates household load: the seasonal-aware models
    # must not lose badly to persistence on RMSE.
    assert reports["seasonal-naive"].rmse <= reports["persistence"].rmse * 1.5


def test_wind_forecast_backtest(benchmark, report, bench_fleet):
    axis = bench_fleet.metering_axis()
    wind = simulate_wind_production(axis, np.random.default_rng(2))

    def backtest_all():
        return {
            name: rolling_backtest(fn, wind, train_intervals=96 * 4, horizon=48, name=name)
            for name, fn in MODELS.items()
        }

    reports = benchmark.pedantic(backtest_all, rounds=1, iterations=1)
    rows = [
        {"model": name, "folds": r.folds, "MAE": round(r.mae, 2), "RMSE": round(r.rmse, 2)}
        for name, r in reports.items()
    ]
    report("Forecasting — 12-hour-ahead wind production backtest", rows)
    # Wind is persistent, not daily-seasonal: persistence must beat the
    # seasonal-naive model on this series (the reverse of consumption).
    assert reports["persistence"].rmse < reports["seasonal-naive"].rmse


def test_scheduling_under_forecast(benchmark, report, bench_fleet):
    """Schedule against forecast surplus; score on realised surplus."""
    params = FlexOfferParams(flexible_share=0.05)
    offers = collect_offers(bench_fleet.traces, PeakBasedExtractor(params=params))
    axis = bench_fleet.metering_axis()
    wind = simulate_wind_production(axis, np.random.default_rng(2))
    total_flex = sum(o.profile_energy_max for o in offers)
    actual = wind * (total_flex / wind.total())

    # Forecast: AR fitted on the first 5 days, forecasting the last 2.
    split = 96 * 5
    history = actual.slice(0, split)
    horizon = axis.length - split
    forecast_tail = autoregressive(history, horizon, order=12)
    forecast_values = np.concatenate([history.values, np.clip(forecast_tail.values, 0, None)])
    forecast = actual.with_values(forecast_values)

    def schedule_on_forecast():
        return greedy_schedule(offers, forecast)

    plan = benchmark(schedule_on_forecast)
    realised_cost = squared_imbalance(plan.demand, actual)
    perfect = greedy_schedule(offers, actual)
    rows = [
        {"plan": "perfect foresight", "sq_imbalance_vs_actual": round(perfect.cost, 2)},
        {"plan": "AR(12) forecast-driven", "sq_imbalance_vs_actual": round(realised_cost, 2)},
        {"plan": "degradation", "sq_imbalance_vs_actual": f"{realised_cost / perfect.cost:.2f}x"},
    ]
    report("Forecasting — scheduling under forecast vs perfect foresight", rows)
    assert realised_cost >= perfect.cost - 1e-9
    assert realised_cost <= perfect.cost * 5.0

"""Ablation: disaggregation algorithm (matching pursuit vs combinatorial vs
event-based).

The §4 extractors are pluggable over the NILM substrate; this bench compares
the three algorithms on the same household for event-level F1 and runtime —
the accuracy/cost trade-off DESIGN.md §5 calls out.
"""

from __future__ import annotations

import time
from datetime import timedelta

import numpy as np
import pytest

from repro.appliances.database import default_database
from repro.disaggregation.baseline import remove_baseline
from repro.disaggregation.combinatorial import disaggregate_combinatorial
from repro.disaggregation.events import detect_edges, pair_edges
from repro.disaggregation.matching import match_pursuit
from repro.evaluation.groundtruth import match_activations
from repro.simulation.activations import Activation
from repro.workloads.scenarios import nilm_household


@pytest.fixture(scope="module")
def short_trace():
    """A 7-day trace keeps the combinatorial search affordable."""
    return nilm_household(days=7, seed=42)


def _event_based_detections(appliance_series, database):
    """Edge detection + pairing + energy-range attribution (the classic)."""
    edges = detect_edges(appliance_series, threshold_kw=0.4)
    pairs = pair_edges(edges)
    detections = []
    for on, off in pairs:
        duration = off.when - on.when
        energy = abs(on.delta_kw) * duration.total_seconds() / 3600.0
        candidates = [
            s
            for s in database.candidates_for_energy(energy)
            if abs((s.cycle_duration - duration).total_seconds()) <= 45 * 60
        ]
        if not candidates:
            continue
        spec = min(
            candidates,
            key=lambda s: abs((s.cycle_duration - duration).total_seconds()),
        )
        detections.append(
            Activation(
                appliance=spec.name,
                start=on.when,
                energy_kwh=float(
                    np.clip(energy, spec.energy_min_kwh, spec.energy_max_kwh)
                ),
                duration=spec.cycle_duration,
                flexible=spec.flexible,
            )
        )
    return detections


def test_disaggregation_algorithm_ablation(benchmark, report, short_trace):
    trace = short_trace
    db = default_database()
    appliance_series, _ = remove_baseline(trace.total)
    truth = trace.activations

    def run_all():
        results = {}
        t0 = time.perf_counter()
        mp = match_pursuit(appliance_series, db)
        results["matching pursuit (default)"] = (
            mp.detections, time.perf_counter() - t0
        )
        t0 = time.perf_counter()
        comb = disaggregate_combinatorial(appliance_series, db)
        results["combinatorial subset search"] = (
            comb.detections, time.perf_counter() - t0
        )
        t0 = time.perf_counter()
        events = _event_based_detections(appliance_series, db)
        results["event-based (edges)"] = (events, time.perf_counter() - t0)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    scores = {}
    for name, (detections, seconds) in results.items():
        match = match_activations(
            detections, truth, start_tolerance=timedelta(minutes=30)
        )
        scores[name] = match
        rows.append(
            {
                "algorithm": name,
                "detections": len(detections),
                "precision": round(match.precision, 3),
                "recall": round(match.recall, 3),
                "f1": round(match.f1, 3),
                "runtime_s": round(seconds, 2),
            }
        )
    report(f"Ablation — disaggregation algorithms ({len(truth)} true events)", rows)

    mp_match = scores["matching pursuit (default)"]
    ev_match = scores["event-based (edges)"]
    # Template knowledge must beat blind edge pairing on F1.
    assert mp_match.f1 >= ev_match.f1
    # The default must stay a usable detector on this workload.
    assert mp_match.f1 >= 0.4

"""Zoned-market benchmark: incremental-gain engine on sharded zone markets.

The 220-offer suite sharded into four zone markets (half explicitly
assigned by routing key, half hash-sharded).  Asserts the incremental-gain
engine is ≥2× the ``engine="reference"`` per-start loop with placements
*bitwise identical* to the vectorized engine, that every aggregate is
scheduled in exactly one zone, and that the ``schedule_zones(workers=2)``
process-pool fan-out reproduces the sequential report exactly — then
refreshes the repository's ``BENCH_zones.json`` baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.scheduling import run_zones_benchmark, zones_table_rows

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_zones.json"


def test_zones_speedup_and_equivalence(report):
    bench_report, result = run_zones_benchmark(out_path=BENCH_JSON)
    report(
        "Zoned market — 220 aggregates x 4 zones x 1 week targets",
        zones_table_rows(bench_report),
    )
    greedy = bench_report["greedy"]
    report(
        "Zoned market — engine timings",
        [
            {
                "engine": name,
                "seconds": greedy[f"{name}_seconds"],
            }
            for name in ("reference", "vectorized", "incremental")
        ],
    )

    workload = bench_report["workload"]
    assert workload["aggregates"] >= 200
    assert workload["zones"] == 4
    # Both assignment paths must actually be exercised.
    assert 0 < workload["mapped_keys"] < workload["aggregates"]

    equivalence = bench_report["equivalence"]
    # The incremental engine is a pure execution-plan change: placements,
    # starts and slice energies bitwise equal to the vectorized engine.
    assert equivalence["incremental_identical_to_vectorized"] is True
    # ... and identical placements to the reference loop (cost to 1e-9).
    assert equivalence["reference_identical_placements"] is True
    assert equivalence["cost_match"] is True
    # Zones are independent: the process-pool fan-out reproduces the
    # sequential report exactly, and every offer lands in exactly one zone.
    assert equivalence["workers_match_sequential"] is True
    assert equivalence["zone_partition"] is True
    # The acceptance gate: ≥2x over the reference full-re-scoring loop on
    # the 220-offer suite.
    assert greedy["speedup_vs_reference"] >= 2.0
    # Every zone received a non-trivial share of the shard.
    assert all(zone["offers"] > 0 for zone in bench_report["zones"])
    assert result.cost < result.baseline_cost
    assert BENCH_JSON.exists()

"""Tests for the peak-based approach, including the exact Figure 5 numbers."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.errors import ExtractionError
from repro.extraction.params import FlexOfferParams
from repro.extraction.peaks import (
    PeakBasedExtractor,
    detect_peaks,
    filter_peaks,
    select_peak,
    selection_probabilities,
)
from repro.flexoffer.validate import PolicyLimits, check_all
from repro.workloads.paper_day import (
    FIGURE5_DAY_TOTAL,
    FIGURE5_FILTER_THRESHOLD,
    FIGURE5_FLEX_SHARE,
    FIGURE5_PEAK_SIZES,
    figure5_day,
)


class TestPeakDetection:
    def test_simple_peak(self):
        values = np.array([1.0, 1.0, 5.0, 5.0, 1.0, 1.0])
        peaks = detect_peaks(values)
        assert len(peaks) == 1
        peak = peaks[0]
        assert peak.first == 2
        assert peak.length == 2
        assert peak.size == 10.0
        assert peak.highest == 5.0
        assert peak.last == 3
        assert list(peak.indices()) == [2, 3]

    def test_no_peaks_on_constant(self):
        assert detect_peaks(np.ones(10)) == []

    def test_custom_threshold(self):
        values = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
        peaks = detect_peaks(values, threshold=2.5)
        assert len(peaks) == 1
        assert peaks[0].size == 3.0

    def test_peak_at_edges(self):
        values = np.array([5.0, 1.0, 1.0, 1.0, 5.0])
        peaks = detect_peaks(values)
        assert len(peaks) == 2
        assert peaks[0].first == 0
        assert peaks[1].first == 4

    def test_empty_rejected(self):
        with pytest.raises(ExtractionError):
            detect_peaks(np.array([]))


class TestFilterAndSelect:
    def test_filter_keeps_large(self):
        values = np.array([0.0, 3.0, 0.0, 1.5, 0.0])
        peaks = detect_peaks(values, threshold=1.0)
        kept = filter_peaks(peaks, 2.0)
        assert [p.size for p in kept] == [3.0]

    def test_probabilities_proportional(self):
        values = np.array([0.0, 1.0, 0.0, 3.0, 0.0])
        peaks = detect_peaks(values, threshold=0.5)
        probs = selection_probabilities(peaks)
        assert probs == pytest.approx([0.25, 0.75])

    def test_select_empirical_frequencies(self):
        values = np.array([0.0, 1.0, 0.0, 3.0, 0.0])
        peaks = detect_peaks(values, threshold=0.5)
        rng = np.random.default_rng(0)
        counts = Counter(select_peak(peaks, rng).first for _ in range(4000))
        assert counts[3] / 4000 == pytest.approx(0.75, abs=0.03)

    def test_select_empty_raises(self):
        with pytest.raises(ExtractionError):
            select_peak([], np.random.default_rng(0))


class TestFigure5Walkthrough:
    """Every number printed in the paper's Figure 5, reproduced exactly."""

    @pytest.fixture()
    def day(self):
        return figure5_day()

    def test_day_total_is_3902(self, day):
        assert day.series.total() == pytest.approx(39.02)

    def test_eight_peaks_with_printed_sizes(self, day):
        peaks = detect_peaks(day.series.values)
        assert len(peaks) == 8
        assert [round(p.size, 2) for p in peaks] == list(FIGURE5_PEAK_SIZES)

    def test_flexible_part_is_1951(self, day):
        flexible = FIGURE5_FLEX_SHARE * day.series.total()
        assert flexible == pytest.approx(1.951)
        assert flexible == pytest.approx(FIGURE5_FILTER_THRESHOLD)

    def test_peaks_1_to_5_and_8_discarded(self, day):
        peaks = detect_peaks(day.series.values)
        survivors = filter_peaks(peaks, FIGURE5_FILTER_THRESHOLD)
        assert [round(p.size, 2) for p in survivors] == [2.22, 5.47]
        discarded = [p for p in peaks if p not in survivors]
        assert sorted(round(p.size, 2) for p in discarded) == sorted(
            [0.47, 1.5, 0.48, 0.48, 1.85, 0.48]
        )

    def test_probabilities_29_71(self, day):
        peaks = filter_peaks(detect_peaks(day.series.values), FIGURE5_FILTER_THRESHOLD)
        probs = selection_probabilities(peaks)
        # Paper prints 29 % and 71 % (2.22/7.69 and 5.47/7.69).
        assert probs[0] == pytest.approx(0.29, abs=0.005)
        assert probs[1] == pytest.approx(0.71, abs=0.005)

    def test_monte_carlo_selection_matches(self, day):
        peaks = filter_peaks(detect_peaks(day.series.values), FIGURE5_FILTER_THRESHOLD)
        rng = np.random.default_rng(42)
        picks = Counter(round(select_peak(peaks, rng).size, 2) for _ in range(5000))
        assert picks[5.47] / 5000 == pytest.approx(0.71, abs=0.02)


class TestPeakBasedExtractor:
    def test_one_offer_per_day(self, paper_day, rng):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        assert len(result.offers) == 1

    def test_extracted_energy_is_flexible_part(self, paper_day, rng):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        assert result.extracted_energy == pytest.approx(1.951, rel=1e-6)
        assert result.energy_conservation_error() < 1e-9

    def test_offer_positioned_on_surviving_peak(self, paper_day):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        day = paper_day
        surviving_firsts = {68, 76}  # peaks 6 and 7
        for seed in range(10):
            result = extractor.extract(day.series, np.random.default_rng(seed))
            offer = result.offers[0]
            start_index = day.series.axis.index_of(offer.earliest_start)
            # Offer must start within one of the surviving peaks.
            assert any(f <= start_index <= f + 5 for f in surviving_firsts)

    def test_modified_series_nonnegative(self, paper_day, rng):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        assert result.modified.is_nonnegative()

    def test_offer_attributes_within_limits(self, paper_day, rng):
        params = FlexOfferParams(flexible_share=0.05)
        extractor = PeakBasedExtractor(params=params)
        result = extractor.extract(paper_day.series, rng)
        limits = PolicyLimits(
            max_slices=params.slices_max,
            max_time_flexibility=params.time_flexibility_max,
        )
        assert check_all(result.offers, limits) == []

    def test_multi_day_extraction(self, fleet, rng):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        trace = fleet.traces[0]
        result = extractor.extract(trace.metered(), rng)
        assert len(result.offers) <= 7  # at most one per day
        assert result.energy_conservation_error() < 1e-6

    def test_tiny_day_no_offer_without_fallback(self, day_axis, rng):
        from repro.timeseries.series import TimeSeries

        # Flat day: no above-mean run can beat the filter threshold.
        series = TimeSeries.full(day_axis, 0.3)
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(series, rng)
        assert result.offers == []

    def test_fallback_to_largest(self, day_axis, rng):
        from repro.timeseries.series import TimeSeries
        import numpy as np

        values = np.full(day_axis.length, 0.3)
        values[40] = 0.5  # one small peak, below the filter threshold
        series = TimeSeries(day_axis, values)
        extractor = PeakBasedExtractor(
            params=FlexOfferParams(flexible_share=0.05), fallback_to_largest=True
        )
        result = extractor.extract(series, rng)
        assert len(result.offers) == 1

    def test_extras_day_reports(self, paper_day, rng):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        days = result.extras["days"]
        assert len(days) == 1
        assert days[0]["day_energy"] == pytest.approx(39.02)
        assert len(days[0]["peaks"]) == 8
        assert len(days[0]["candidates"]) == 2

"""Unit tests for :mod:`repro.flexoffer.validate` and :mod:`repro.flexoffer.io`."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.errors import DataError
from repro.flexoffer.io import (
    flexoffer_from_dict,
    flexoffer_to_dict,
    load_flexoffers,
    save_flexoffers,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.flexoffer.model import FlexOffer, ProfileSlice, figure1_flexoffer
from repro.flexoffer.schedule import default_schedule
from repro.flexoffer.validate import PolicyLimits, check_all, is_compliant

START = datetime(2012, 3, 5, 18, 0)


def offer(**overrides) -> FlexOffer:
    defaults = dict(
        earliest_start=START,
        latest_start=START + timedelta(hours=2),
        slices=(ProfileSlice(0.5, 1.0), ProfileSlice(0.25, 0.5)),
        creation_time=START - timedelta(hours=24),
        acceptance_deadline=START - timedelta(hours=12),
        assignment_deadline=START - timedelta(hours=1),
    )
    defaults.update(overrides)
    return FlexOffer(**defaults)


class TestPolicyLimits:
    def test_compliant_offer(self):
        assert is_compliant(offer())

    def test_slice_count_limits(self):
        limits = PolicyLimits(min_slices=3)
        problems = limits.check(offer())
        assert any("slices" in p for p in problems)
        limits = PolicyLimits(max_slices=1)
        assert limits.check(offer())

    def test_energy_limits(self):
        limits = PolicyLimits(min_total_energy=5.0)
        assert limits.check(offer())
        limits = PolicyLimits(max_total_energy=0.1)
        assert limits.check(offer())

    def test_time_flexibility_limits(self):
        limits = PolicyLimits(min_time_flexibility=timedelta(hours=3))
        assert limits.check(offer())
        limits = PolicyLimits(max_time_flexibility=timedelta(hours=1))
        assert limits.check(offer())

    def test_deadline_order_violation(self):
        bad = offer(
            creation_time=START - timedelta(hours=1),
            acceptance_deadline=START - timedelta(hours=12),
        )
        problems = PolicyLimits().check(bad)
        assert any("creation_time" in p for p in problems)

    def test_deadline_order_ignores_missing(self):
        assert is_compliant(offer(creation_time=None, acceptance_deadline=None))

    def test_check_all_flags_duplicates(self):
        fo = offer()
        problems = check_all([fo, fo])
        assert any("duplicate" in p for p in problems)

    def test_check_all_clean_batch(self):
        assert check_all([offer() for _ in range(3)]) == []


class TestIO:
    def test_roundtrip_preserves_everything(self):
        original = offer(
            consumer_id="c-1",
            appliance="washing-machine-y",
            source="test",
            total_energy_min=0.8,
            total_energy_max=1.4,
        )
        restored = flexoffer_from_dict(flexoffer_to_dict(original))
        assert restored == original

    def test_roundtrip_figure1(self):
        original = figure1_flexoffer(datetime(2012, 3, 5))
        restored = flexoffer_from_dict(flexoffer_to_dict(original))
        assert restored.latest_end == original.latest_end
        assert restored.slices == original.slices

    def test_missing_field_raises(self):
        data = flexoffer_to_dict(offer())
        del data["slices"]
        with pytest.raises(DataError):
            flexoffer_from_dict(data)

    def test_unknown_version_raises(self):
        data = flexoffer_to_dict(offer())
        data["version"] = 999
        with pytest.raises(DataError):
            flexoffer_from_dict(data)

    def test_schedule_roundtrip(self):
        sched = default_schedule(offer())
        restored = schedule_from_dict(schedule_to_dict(sched))
        assert restored.start == sched.start
        assert restored.slice_energies == sched.slice_energies
        assert restored.offer == sched.offer

    def test_schedule_result_roundtrip(self):
        import json

        import numpy as np

        from repro.flexoffer.io import (
            schedule_result_from_dict,
            schedule_result_to_dict,
        )
        from repro.scheduling import greedy_schedule
        from repro.timeseries.axis import axis_for_days
        from repro.timeseries.series import TimeSeries

        axis = axis_for_days(datetime(2012, 3, 5), 1)
        target = TimeSeries(
            axis, np.random.default_rng(3).uniform(0, 1, axis.length), "surplus"
        )
        out_of_horizon = offer(
            earliest_start=START + timedelta(days=30),
            latest_start=START + timedelta(days=30, hours=1),
        )
        result = greedy_schedule([offer(), offer(), out_of_horizon], target)
        assert result.schedules and result.unplaced
        encoded = schedule_result_to_dict(result)
        # JSON-native and stable through an actual serialisation.
        restored = schedule_result_from_dict(json.loads(json.dumps(encoded)))
        assert restored == result
        assert restored.cost == result.cost
        assert restored.demand == result.demand
        missing = dict(encoded)
        del missing["schedules"]
        with pytest.raises(DataError):
            schedule_result_from_dict(missing)

    def test_file_roundtrip(self, tmp_path):
        offers = [offer() for _ in range(5)]
        path = tmp_path / "offers.json"
        save_flexoffers(offers, path)
        loaded = load_flexoffers(path)
        assert loaded == offers

    def test_load_non_list_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(DataError):
            load_flexoffers(path)

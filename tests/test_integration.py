"""Integration tests: the full MIRABEL pipeline across modules.

These exercise the seams the paper's §6 describes: extraction feeds
aggregation, aggregation feeds scheduling, schedules disaggregate back to
households, and the realism evaluation closes the loop against simulator
ground truth.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.aggregation import aggregate_all, disaggregate_schedule, group_offers
from repro.evaluation.comparison import collect_offers
from repro.evaluation.realism import offers_to_expected_series
from repro.extraction import (
    BasicExtractor,
    FlexOfferParams,
    FrequencyBasedExtractor,
    MultiTariffExtractor,
    PeakBasedExtractor,
    RandomBaselineExtractor,
    ScheduleBasedExtractor,
)
from repro.flexoffer.schedule import schedules_to_series
from repro.flexoffer.validate import PolicyLimits, check_all
from repro.scheduling import greedy_schedule, improve_schedule, naive_schedule
from repro.simulation.res import simulate_wind_production
from repro.timeseries.resample import downsample_sum
from repro.timeseries.axis import FIFTEEN_MINUTES


class TestExtractionContracts:
    """Every extractor honours the Figure 2 contract on the same input."""

    @pytest.mark.parametrize("extractor_factory", [
        lambda: BasicExtractor(params=FlexOfferParams(flexible_share=0.05)),
        lambda: PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05)),
        lambda: RandomBaselineExtractor(),
    ])
    def test_household_level_contract(self, fleet, extractor_factory):
        trace = fleet.traces[0]
        series = trace.metered()
        extractor = extractor_factory()
        result = extractor.extract(series, np.random.default_rng(0))
        assert result.original == series
        assert result.modified.axis.aligned_with(series.axis)
        assert result.modified.is_nonnegative()
        assert check_all(result.offers, PolicyLimits(max_slices=None)) == []
        for offer in result.offers:
            assert offer.source == extractor.name

    @pytest.mark.parametrize("extractor_factory", [
        lambda: FrequencyBasedExtractor(),
        lambda: ScheduleBasedExtractor(),
    ])
    def test_appliance_level_contract(self, nilm_trace, extractor_factory):
        extractor = extractor_factory()
        result = extractor.extract(nilm_trace.total, np.random.default_rng(0))
        assert result.modified.is_nonnegative()
        assert result.energy_conservation_error() < 1e-6
        for offer in result.offers:
            assert offer.appliance  # appliance-level offers are attributed


class TestFullPipeline:
    def test_extract_aggregate_schedule_disaggregate(self, fleet):
        """The complete §6 loop with peak-based offers."""
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        offers = collect_offers(fleet.traces, extractor)
        assert offers

        groups = group_offers(offers)
        aggregates = aggregate_all(groups)
        assert sum(a.size for a in aggregates) == len(offers)

        axis = fleet.metering_axis()
        wind = simulate_wind_production(axis, np.random.default_rng(2))
        total_flex = sum(o.profile_energy_max for o in offers)
        target = wind * (total_flex / wind.total())

        result = greedy_schedule([a.offer for a in aggregates], target)
        improved = improve_schedule(result, np.random.default_rng(3), iterations=200)
        assert improved.cost <= result.cost + 1e-9

        # Disaggregate every scheduled aggregate; members must be feasible
        # (ScheduledFlexOffer validates on construction) and energy must add up.
        by_id = {a.offer.offer_id: a for a in aggregates}
        member_schedules = []
        for sched in improved.schedules:
            agg = by_id[sched.offer.offer_id]
            parts = disaggregate_schedule(agg, sched)
            assert sum(p.total_energy for p in parts) == pytest.approx(
                sched.total_energy, abs=1e-6
            )
            member_schedules.extend(parts)
        # Household-level demand equals aggregate-level demand.
        agg_demand = improved.demand
        member_demand = schedules_to_series(member_schedules, axis)
        assert member_demand.allclose(agg_demand, atol=1e-6)

    def test_scheduling_with_extracted_beats_naive_and_random(self, fleet):
        """E11's shape: extracted flexibility reduces imbalance vs baselines."""
        params = FlexOfferParams(flexible_share=0.05)
        peak_offers = collect_offers(fleet.traces, PeakBasedExtractor(params=params))
        axis = fleet.metering_axis()
        wind = simulate_wind_production(axis, np.random.default_rng(2))
        total_flex = sum(o.profile_energy_max for o in peak_offers)
        target = wind * (total_flex / wind.total())

        naive_cost = naive_schedule(peak_offers, target).cost
        greedy_cost = greedy_schedule(peak_offers, target).cost
        assert greedy_cost < naive_cost

    def test_multitariff_pipeline(self, tariff_pair):
        """§3.3 end to end: paired simulation -> extraction -> aggregation."""
        extractor = MultiTariffExtractor(
            reference=tariff_pair.single.metered(), scheme=tariff_pair.scheme
        )
        result = extractor.extract(tariff_pair.multi.metered(), np.random.default_rng(0))
        assert result.offers
        groups = group_offers(result.offers)
        aggregates = aggregate_all(groups)
        assert sum(a.size for a in aggregates) == len(result.offers)

    def test_appliance_offers_schedule_cleanly(self, nilm_trace):
        """Frequency-based offers (22 h robot flexibility etc.) are schedulable."""
        extractor = FrequencyBasedExtractor()
        result = extractor.extract(nilm_trace.total, np.random.default_rng(0))
        offers = result.offers
        assert offers
        metered = nilm_trace.metered()
        wind = simulate_wind_production(metered.axis, np.random.default_rng(4))
        total_flex = sum(o.profile_energy_max for o in offers)
        target = wind * (total_flex / wind.total())
        scheduled = greedy_schedule(offers, target)
        placed_ids = {s.offer.offer_id for s in scheduled.schedules}
        # Nearly everything has room on a two-week horizon.
        assert len(placed_ids) >= 0.8 * len(offers)

    def test_peak_concentration_vs_random_dispersion(self, fleet):
        """E10's shape: peak-based offers concentrate at consumption peaks."""
        from repro.timeseries.stats import temporal_dispersion

        params = FlexOfferParams(flexible_share=0.05)
        axis = fleet.metering_axis()
        peak_offers = collect_offers(fleet.traces, PeakBasedExtractor(params=params))
        random_offers = collect_offers(fleet.traces, RandomBaselineExtractor())
        peak_series = offers_to_expected_series(peak_offers, axis)
        random_series = offers_to_expected_series(random_offers, axis)
        assert temporal_dispersion(peak_series) < temporal_dispersion(random_series)

    def test_aggregated_offers_track_fleet_shape(self, fleet):
        """§6: 'the aggregated flex-offers are pretty realistic' — their
        expected series correlates with the fleet consumption shape."""
        from repro.timeseries.stats import correlation

        params = FlexOfferParams(flexible_share=0.05)
        offers = collect_offers(fleet.traces, PeakBasedExtractor(params=params))
        axis = fleet.metering_axis()
        expected = offers_to_expected_series(offers, axis)
        fleet_consumption = fleet.aggregate_metered()
        assert correlation(expected, fleet_consumption) > 0.3

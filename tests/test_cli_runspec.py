"""CLI over the unified API: run specs, the approaches table, extract gaps.

The historical CLI hardcoded ``{basic, peak-based}``; these tests pin the
registry-backed grammar: every registered approach is extractable, grid
mismatches fail with actionable errors, and ``repro run`` executes a
declarative spec end to end (including the shipped smoke spec used by CI).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import RunReport, available_extractors
from repro.cli import build_parser, main

SMOKE_SPEC = Path(__file__).resolve().parents[1] / "examples" / "specs" / "smoke.json"
MARKET_SPEC = Path(__file__).resolve().parents[1] / "examples" / "specs" / "market.json"


@pytest.fixture()
def metered_csv(tmp_path) -> Path:
    assert main(
        ["simulate", "--households", "1", "--days", "2", "--seed", "4",
         "--out", str(tmp_path / "m")]
    ) == 0
    return next((tmp_path / "m").glob("*.csv"))


@pytest.fixture()
def total_csv(tmp_path) -> Path:
    assert main(
        ["simulate", "--households", "1", "--days", "2", "--seed", "4",
         "--grid", "total", "--out", str(tmp_path / "t")]
    ) == 0
    return next((tmp_path / "t").glob("*.csv"))


class TestParserGrammar:
    def test_new_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["approaches"]).command == "approaches"
        args = parser.parse_args(["run", "--spec", "x.json"])
        assert args.command == "run" and args.spec == Path("x.json")

    def test_extract_accepts_every_registered_approach(self):
        parser = build_parser()
        for name in available_extractors():
            args = parser.parse_args(
                ["extract", "--input", "i.csv", "--approach", name, "--out", "o.json"]
            )
            assert args.approach == name

    def test_param_flag_parses_json_scalars(self):
        parser = build_parser()
        args = parser.parse_args(
            ["extract", "--input", "i.csv", "--out", "o.json",
             "--param", "flexible_share=0.1", "--param", "engine=reference"]
        )
        assert dict(args.param) == {"flexible_share": 0.1, "engine": "reference"}


class TestApproaches:
    def test_lists_every_registered_approach(self, capsys):
        assert main(["approaches"]) == 0
        out = capsys.readouterr().out
        for name in available_extractors():
            assert name in out
        assert "1-minute total" in out  # grid column present


class TestExtract:
    def test_schedule_based_from_total_grid(self, total_csv, tmp_path):
        out = tmp_path / "offers.json"
        code = main(
            ["extract", "--input", str(total_csv),
             "--approach", "schedule-based", "--out", str(out)]
        )
        assert code == 0
        assert isinstance(json.loads(out.read_text()), list)

    def test_appliance_approach_rejects_metered_grid(self, metered_csv, tmp_path, capsys):
        code = main(
            ["extract", "--input", str(metered_csv),
             "--approach", "frequency-based", "--out", str(tmp_path / "o.json")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "requires input on the 1-minute grid" in err
        assert "--grid total" in err  # actionable hint

    def test_multi_tariff_requires_reference(self, metered_csv, tmp_path, capsys):
        code = main(
            ["extract", "--input", str(metered_csv),
             "--approach", "multi-tariff", "--out", str(tmp_path / "o.json")]
        )
        assert code == 1
        assert "requires parameter(s) 'reference'" in capsys.readouterr().err

    def test_multi_tariff_with_reference_runs(self, metered_csv, tmp_path):
        out = tmp_path / "offers.json"
        code = main(
            ["extract", "--input", str(metered_csv),
             "--approach", "multi-tariff",
             "--reference", str(metered_csv), "--out", str(out)]
        )
        assert code == 0  # identical reference → zero shift, still a clean run
        assert json.loads(out.read_text()) == []

    def test_param_flag_reaches_the_extractor(self, metered_csv, tmp_path, capsys):
        code = main(
            ["extract", "--input", str(metered_csv), "--approach", "basic",
             "--param", "period_hours=12", "--out", str(tmp_path / "o.json")]
        )
        assert code == 0
        assert "basic:" in capsys.readouterr().out

    def test_unknown_param_fails_cleanly(self, metered_csv, tmp_path, capsys):
        code = main(
            ["extract", "--input", str(metered_csv), "--approach", "basic",
             "--param", "wibble=1", "--out", str(tmp_path / "o.json")]
        )
        assert code == 1
        assert "has no parameter 'wibble'" in capsys.readouterr().err


class TestRun:
    def test_run_spec_end_to_end_with_report(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "version": 1,
            "kind": "fleet",
            "name": "cli-test",
            "scenario": {"households": 2, "days": 2, "seed": 7},
            "extractors": [
                {"name": "basic"},
                {"name": "peak-based"},
                {"name": "random-baseline"},
                {"name": "frequency-based"},
            ],
            "pipeline": {"chunk_size": 4},
        }))
        report_path = tmp_path / "report.json"
        code = main(["run", "--spec", str(spec_path), "--out", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "kind=fleet" in out and "frequency-based" in out
        report = RunReport.load(report_path)
        assert len(report.results) == 4
        assert report.total_offers > 0

    def test_shipped_smoke_spec_runs(self, capsys):
        assert SMOKE_SPEC.exists()
        code = main(["run", "--spec", str(SMOKE_SPEC)])
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule-based" in out

    def test_shipped_market_spec_runs_schedule_stage(self, tmp_path, capsys):
        assert MARKET_SPEC.exists()
        report_path = tmp_path / "market.json"
        code = main(["run", "--spec", str(MARKET_SPEC), "--out", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule_cost" in out
        report = RunReport.load(report_path)
        for result in report.results:
            assert result.schedule is not None
            assert "schedule" in result.stage_seconds
            assert result.summary["schedule_placed"] + result.summary[
                "schedule_unplaced"
            ] == float(len(result.aggregates))
        # The full report — schedule stage included — survives the wire.
        assert RunReport.from_json(report.to_json()) == report

    def test_bad_spec_fails_cleanly(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text('{"kind": "party"}')
        assert main(["run", "--spec", str(spec_path)]) == 1
        assert "kind must be one of" in capsys.readouterr().err

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", "--spec", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestEvaluate:
    def test_named_approaches_via_registry(self, capsys):
        code = main(
            ["evaluate", "--households", "2", "--days", "2",
             "--approaches", "basic,random-baseline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "basic" in out and "random-baseline" in out

    def test_unknown_approach_fails_cleanly(self, capsys):
        code = main(["evaluate", "--households", "2", "--days", "2",
                     "--approaches", "zorp"])
        assert code == 1
        assert "unknown extractor 'zorp'" in capsys.readouterr().err

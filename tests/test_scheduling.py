"""Tests for greedy/stochastic scheduling and the objectives (paper [5])."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.scheduling.greedy import ScheduleConfig, greedy_schedule, naive_schedule
from repro.scheduling.objective import (
    absolute_imbalance,
    overshoot,
    squared_imbalance,
    unmet_target,
)
from repro.scheduling.stochastic import improve_schedule
from repro.timeseries.axis import axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


def offer(start_h: float, flex_h: float, e: float = 1.0, slices: int = 2) -> FlexOffer:
    est = START + timedelta(hours=start_h)
    share = e / slices
    return FlexOffer(
        earliest_start=est,
        latest_start=est + timedelta(hours=flex_h),
        slices=tuple(ProfileSlice(0.5 * share, 1.5 * share) for _ in range(slices)),
    )


class TestObjectives:
    def test_squared_and_absolute(self):
        axis = axis_for_days(START, 1)
        demand = TimeSeries.full(axis, 1.0)
        target = TimeSeries.full(axis, 2.0)
        assert squared_imbalance(demand, target) == pytest.approx(96.0)
        assert absolute_imbalance(demand, target) == pytest.approx(96.0)

    def test_unmet_and_overshoot(self):
        axis = axis_for_days(START, 1)
        demand = TimeSeries(axis, np.r_[np.zeros(48), np.full(48, 2.0)])
        target = TimeSeries.full(axis, 1.0)
        assert unmet_target(demand, target) == pytest.approx(48.0)
        assert overshoot(demand, target) == pytest.approx(48.0)


class TestGreedy:
    def test_places_offer_on_target_spike(self):
        axis = axis_for_days(START, 1)
        target_values = np.zeros(axis.length)
        target_values[40:42] = 1.0  # 10:00-10:30
        target = TimeSeries(axis, target_values)
        fo = offer(start_h=0.0, flex_h=23.0, e=2.0)
        result = greedy_schedule([fo], target)
        assert len(result.schedules) == 1
        start_index = axis.index_of(result.schedules[0].start)
        assert start_index == 40

    def test_energy_levels_water_fill(self):
        axis = axis_for_days(START, 1)
        target_values = np.zeros(axis.length)
        target_values[40] = 0.6
        target_values[41] = 0.6
        target = TimeSeries(axis, target_values)
        fo = offer(start_h=0.0, flex_h=20.0, e=1.0)  # slices in [0.25, 0.75]
        result = greedy_schedule([fo], target)
        sched = result.schedules[0]
        assert all(abs(e - 0.6) < 1e-9 for e in sched.slice_energies)

    def test_respects_time_window(self):
        axis = axis_for_days(START, 1)
        target_values = np.zeros(axis.length)
        target_values[80] = 5.0  # 20:00 spike
        target = TimeSeries(axis, target_values)
        fo = offer(start_h=1.0, flex_h=2.0, e=1.0)  # can only start 01:00-03:00
        result = greedy_schedule([fo], target)
        start = result.schedules[0].start
        assert fo.earliest_start <= start <= fo.latest_start

    def test_greedy_beats_naive(self, fleet):
        from repro.extraction import PeakBasedExtractor, FlexOfferParams
        from repro.evaluation.comparison import collect_offers
        from repro.simulation.res import simulate_wind_production

        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        offers = collect_offers(fleet.traces, extractor)
        axis = fleet.metering_axis()
        wind = simulate_wind_production(axis, np.random.default_rng(2))
        total_flex = sum(o.profile_energy_max for o in offers)
        target = wind * (total_flex / wind.total())
        naive = naive_schedule(offers, target)
        greedy = greedy_schedule(offers, target)
        assert greedy.cost < naive.cost

    def test_orderings(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries.full(axis, 0.5)
        offers = [offer(0.0, 5.0), offer(2.0, 1.0)]
        for order in ("least-flexible-first", "largest-first", "as-given"):
            result = greedy_schedule(offers, target, order=order)
            assert len(result.schedules) == 2
        with pytest.raises(SchedulingError):
            greedy_schedule(offers, target, order="nonsense")

    def test_offer_outside_axis_unplaced(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries.full(axis, 0.5)
        outside = offer(start_h=30.0, flex_h=1.0)
        result = greedy_schedule([outside], target)
        assert result.schedules == []
        assert result.unplaced == [outside]

    def test_improvement_metric(self):
        axis = axis_for_days(START, 1)
        target_values = np.zeros(axis.length)
        target_values[40:42] = 0.5
        target = TimeSeries(axis, target_values)
        fo = offer(0.0, 23.0, e=1.0)
        result = greedy_schedule([fo], target)
        assert 0.0 < result.improvement <= 1.0
        assert result.baseline_cost == pytest.approx(float(np.dot(target_values, target_values)))


class TestNaive:
    def test_naive_places_at_earliest_midpoint(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries.zeros(axis)
        fo = offer(start_h=3.0, flex_h=6.0, e=1.0)
        result = naive_schedule([fo], target)
        sched = result.schedules[0]
        assert sched.start == fo.earliest_start
        midpoint_total = sum(s.midpoint for s in fo.slices)
        assert sched.total_energy == pytest.approx(midpoint_total)


class TestScheduleConfig:
    def test_engine_and_order_validated(self):
        with pytest.raises(SchedulingError):
            ScheduleConfig(engine="turbo")
        with pytest.raises(SchedulingError):
            ScheduleConfig(order="nonsense")
        with pytest.raises(SchedulingError):
            ScheduleConfig(improve_iterations=-1)

    def test_order_argument_overrides_config(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries.full(axis, 0.5)
        offers = [offer(0.0, 5.0), offer(2.0, 1.0)]
        config = ScheduleConfig(order="largest-first")
        result = greedy_schedule(offers, target, order="as-given", config=config)
        assert [s.offer.offer_id for s in result.schedules] == [
            o.offer_id for o in offers
        ]


class TestEngineEquivalence:
    """The vectorized placement engine is a pure execution-plan change."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.scheduling import build_schedule_workload

        aggregates, target = build_schedule_workload(n_aggregates=40, seed=23)
        return [a.offer for a in aggregates], target

    def test_greedy_engines_agree(self, workload):
        offers, target = workload
        reference = greedy_schedule(
            offers, target, config=ScheduleConfig(engine="reference")
        )
        vectorized = greedy_schedule(offers, target)
        assert [(s.offer.offer_id, s.start) for s in reference.schedules] == [
            (s.offer.offer_id, s.start) for s in vectorized.schedules
        ]
        assert [o.offer_id for o in reference.unplaced] == [
            o.offer_id for o in vectorized.unplaced
        ]
        for a, b in zip(reference.schedules, vectorized.schedules):
            assert a.slice_energies == pytest.approx(b.slice_energies, rel=1e-9)
        assert vectorized.cost == pytest.approx(reference.cost, rel=1e-9)

    def test_greedy_engines_agree_on_every_order(self, workload):
        offers, target = workload
        for order in ("least-flexible-first", "largest-first", "as-given"):
            reference = greedy_schedule(
                offers, target, config=ScheduleConfig(order=order, engine="reference")
            )
            vectorized = greedy_schedule(offers, target, order=order)
            assert [s.start for s in reference.schedules] == [
                s.start for s in vectorized.schedules
            ]

    def test_stochastic_engines_bitwise_identical(self, workload):
        offers, target = workload
        start = greedy_schedule(offers, target)
        reference = improve_schedule(
            start, np.random.default_rng(9), iterations=400, engine="reference"
        )
        vectorized = improve_schedule(
            start, np.random.default_rng(9), iterations=400, engine="vectorized"
        )
        assert [(s.start, s.slice_energies) for s in reference.schedules] == [
            (s.start, s.slice_energies) for s in vectorized.schedules
        ]
        assert reference.cost == vectorized.cost

    def test_stochastic_engine_validated(self, workload):
        offers, target = workload
        result = greedy_schedule(offers[:2], target)
        with pytest.raises(SchedulingError):
            improve_schedule(result, np.random.default_rng(0), engine="warp")

    def test_engines_agree_on_offers_off_the_axis_grid(self):
        # Offers anchored between metering intervals and spilling over the
        # horizon edges take every branch of the start-grid arithmetic.
        axis = axis_for_days(START, 1)
        target = TimeSeries(
            axis, np.random.default_rng(4).uniform(0, 1, axis.length)
        )
        offers = [
            FlexOffer(
                earliest_start=START + timedelta(minutes=7),
                latest_start=START + timedelta(hours=26),
                slices=(ProfileSlice(0.2, 0.8, 3), ProfileSlice(0.1, 0.5, 2)),
            ),
            FlexOffer(
                earliest_start=START - timedelta(hours=2),
                latest_start=START + timedelta(hours=1),
                slices=(ProfileSlice(0.5, 1.0),),
            ),
            FlexOffer(
                earliest_start=START + timedelta(days=2),
                latest_start=START + timedelta(days=3),
                slices=(ProfileSlice(0.5, 1.0),),
            ),
        ]
        reference = greedy_schedule(
            offers, target, config=ScheduleConfig(engine="reference")
        )
        vectorized = greedy_schedule(offers, target)
        assert [s.start for s in reference.schedules] == [
            s.start for s in vectorized.schedules
        ]
        assert [o.offer_id for o in reference.unplaced] == [
            o.offer_id for o in vectorized.unplaced
        ]


class TestEarliestAllowed:
    """The ``earliest_allowed`` commit boundary every engine must respect.

    A rolling-horizon session freezes placements inside its commit
    horizon; re-planning the open window passes the boundary down, and no
    engine may place a start before it.  ``None`` must stay bitwise the
    pre-session behaviour.
    """

    def test_boundary_pushes_start_past_earlier_spike(self):
        axis = axis_for_days(START, 1)
        target_values = np.zeros(axis.length)
        target_values[16:18] = 1.0  # 04:00 spike the offer would prefer
        target = TimeSeries(axis, target_values)
        fo = offer(start_h=0.0, flex_h=20.0, e=2.0)
        boundary = START + timedelta(hours=12)
        for engine in ("vectorized", "incremental", "reference"):
            result = greedy_schedule(
                [fo],
                target,
                config=ScheduleConfig(engine=engine),
                earliest_allowed=boundary,
            )
            assert len(result.schedules) == 1, engine
            assert result.schedules[0].start >= boundary, engine

    def test_window_entirely_before_boundary_is_unplaced(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries.full(axis, 1.0)
        fo = offer(start_h=1.0, flex_h=2.0, e=1.0)  # window closes 03:00
        for engine in ("vectorized", "incremental", "reference"):
            result = greedy_schedule(
                [fo],
                target,
                config=ScheduleConfig(engine=engine),
                earliest_allowed=START + timedelta(hours=6),
            )
            assert result.schedules == [], engine
            assert [o.offer_id for o in result.unplaced] == [fo.offer_id], engine

    def test_none_is_bitwise_the_default(self):
        from repro.scheduling import build_schedule_workload

        aggregates, target = build_schedule_workload(n_aggregates=20, seed=29)
        offers = [a.offer for a in aggregates]
        plain = greedy_schedule(offers, target)
        gated = greedy_schedule(offers, target, earliest_allowed=None)
        assert gated == plain

    def test_engines_agree_under_a_boundary(self):
        from repro.scheduling import build_schedule_workload

        aggregates, target = build_schedule_workload(n_aggregates=30, seed=31)
        offers = [a.offer for a in aggregates]
        boundary = target.axis.start + timedelta(hours=36)
        results = [
            greedy_schedule(
                offers,
                target,
                config=ScheduleConfig(engine=engine),
                earliest_allowed=boundary,
            )
            for engine in ("vectorized", "incremental", "reference")
        ]
        for result in results:
            for schedule in result.schedules:
                assert schedule.start >= boundary
        placements = [
            [(s.offer.offer_id, s.start) for s in result.schedules]
            for result in results
        ]
        assert placements[0] == placements[1] == placements[2]


class TestStartGrid:
    def test_matches_feasible_starts_filter(self):
        from repro.scheduling.greedy import start_grid

        axis = axis_for_days(START, 1)
        fo = FlexOffer(
            earliest_start=START + timedelta(minutes=5),
            latest_start=START + timedelta(hours=23, minutes=35),
            slices=(ProfileSlice(0.1, 0.4), ProfileSlice(0.1, 0.4)),
        )
        steps, firsts = start_grid(fo, axis, require_fit=False)
        expected = [s for s in fo.feasible_starts() if axis.contains(s)]
        starts = [fo.earliest_start + fo.resolution * int(k) for k in steps]
        assert starts == expected
        assert [axis.index_of(s) for s in expected] == list(firsts)

    def test_require_fit_drops_overruns(self):
        from repro.scheduling.greedy import start_grid

        axis = axis_for_days(START, 1)
        fo = offer(start_h=23.0, flex_h=3.0, e=1.0, slices=2)
        loose_steps, _ = start_grid(fo, axis, require_fit=False)
        tight_steps, tight_firsts = start_grid(fo, axis, require_fit=True)
        assert len(tight_steps) < len(loose_steps)
        assert all(first + 2 <= axis.length for first in tight_firsts)


class TestStochasticImprovement:
    def test_never_worse(self):
        axis = axis_for_days(START, 1)
        rng_target = np.random.default_rng(1)
        target = TimeSeries(axis, rng_target.uniform(0, 1, axis.length))
        offers = [offer(h, 6.0, e=1.0) for h in (0, 2, 4, 6, 8)]
        greedy = greedy_schedule(offers, target, order="as-given")
        improved = improve_schedule(greedy, np.random.default_rng(2), iterations=300)
        assert improved.cost <= greedy.cost + 1e-9

    def test_finds_obvious_improvement(self):
        axis = axis_for_days(START, 1)
        target_values = np.zeros(axis.length)
        target_values[60:62] = 1.0
        target = TimeSeries(axis, target_values)
        fo = offer(0.0, 20.0, e=2.0)
        # Deliberately bad starting point: naive places at earliest (00:00).
        bad = naive_schedule([fo], target)
        improved = improve_schedule(bad, np.random.default_rng(3), iterations=500)
        assert improved.cost < bad.cost

    def test_zero_iterations_identity(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries.full(axis, 0.2)
        result = greedy_schedule([offer(0.0, 2.0)], target)
        same = improve_schedule(result, np.random.default_rng(0), iterations=0)
        assert same.cost == result.cost

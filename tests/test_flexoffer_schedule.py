"""Unit tests for :mod:`repro.flexoffer.schedule`."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import SchedulingError, ValidationError
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.flexoffer.schedule import (
    ScheduledFlexOffer,
    default_schedule,
    schedules_to_series,
)
from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis, axis_for_days

START = datetime(2012, 3, 5, 18, 0)


def offer(**overrides) -> FlexOffer:
    defaults = dict(
        earliest_start=START,
        latest_start=START + timedelta(hours=2),
        slices=(ProfileSlice(0.5, 1.0), ProfileSlice(0.25, 0.5)),
    )
    defaults.update(overrides)
    return FlexOffer(**defaults)


class TestValidation:
    def test_valid_schedule(self):
        sched = ScheduledFlexOffer(offer(), START, (0.75, 0.3))
        assert sched.total_energy == pytest.approx(1.05)
        assert sched.end == START + timedelta(minutes=30)

    def test_start_outside_window_rejected(self):
        with pytest.raises(ValidationError):
            ScheduledFlexOffer(offer(), START - timedelta(minutes=15), (0.75, 0.3))
        with pytest.raises(ValidationError):
            ScheduledFlexOffer(offer(), START + timedelta(hours=3), (0.75, 0.3))

    def test_wrong_energy_count_rejected(self):
        with pytest.raises(ValidationError):
            ScheduledFlexOffer(offer(), START, (0.75,))

    def test_energy_out_of_slice_bounds_rejected(self):
        with pytest.raises(ValidationError):
            ScheduledFlexOffer(offer(), START, (1.5, 0.3))
        with pytest.raises(ValidationError):
            ScheduledFlexOffer(offer(), START, (0.75, 0.1))

    def test_total_bounds_enforced(self):
        tight = offer(total_energy_max=1.0)
        with pytest.raises(ValidationError):
            ScheduledFlexOffer(tight, START, (1.0, 0.5))


class TestMaterialisation:
    def test_to_series_places_energy(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 8)
        sched = ScheduledFlexOffer(offer(), START + timedelta(minutes=30), (0.75, 0.3))
        series = sched.to_series(axis)
        assert series.values[2] == pytest.approx(0.75)
        assert series.values[3] == pytest.approx(0.3)
        assert series.total() == pytest.approx(1.05)

    def test_multi_interval_slice_spread(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 8)
        fo = offer(slices=(ProfileSlice(0.8, 1.2, duration=4),))
        sched = ScheduledFlexOffer(fo, START, (1.0,))
        series = sched.to_series(axis)
        assert np.allclose(series.values[:4], 0.25)

    def test_overrun_raises(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 2)
        sched = ScheduledFlexOffer(offer(), START + timedelta(minutes=15), (0.75, 0.3))
        with pytest.raises(SchedulingError):
            sched.to_series(axis)

    def test_start_outside_axis_raises(self):
        axis = TimeAxis(START + timedelta(hours=5), FIFTEEN_MINUTES, 8)
        sched = ScheduledFlexOffer(offer(), START, (0.75, 0.3))
        with pytest.raises(SchedulingError):
            sched.to_series(axis)

    def test_schedules_to_series_accumulates(self):
        axis = axis_for_days(START.replace(hour=0), 1)
        s1 = ScheduledFlexOffer(offer(), START, (0.75, 0.3))
        s2 = ScheduledFlexOffer(offer(), START, (0.5, 0.25))
        combined = schedules_to_series([s1, s2], axis)
        assert combined.total() == pytest.approx(1.8)
        first = axis.index_of(START)
        assert combined.values[first] == pytest.approx(1.25)


class TestDefaultSchedule:
    def test_default_is_midpoint_at_earliest(self):
        sched = default_schedule(offer())
        assert sched.start == START
        assert sched.slice_energies == (0.75, 0.375)

    def test_level_zero_and_one(self):
        assert default_schedule(offer(), level=0.0).slice_energies == (0.5, 0.25)
        assert default_schedule(offer(), level=1.0).slice_energies == (1.0, 0.5)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            default_schedule(offer(), level=1.5)

    def test_custom_start(self):
        start = START + timedelta(hours=1)
        assert default_schedule(offer(), start=start).start == start

    def test_redistribution_hits_tight_total(self):
        tight = offer(total_energy_max=0.8)
        sched = default_schedule(tight, level=1.0)
        assert sched.total_energy == pytest.approx(0.8)
        # per-slice bounds still respected
        for energy, sl in zip(sched.slice_energies, tight.slices):
            assert sl.energy_min - 1e-9 <= energy <= sl.energy_max + 1e-9

    def test_redistribution_hits_tight_minimum(self):
        tight = offer(total_energy_min=1.4)
        sched = default_schedule(tight, level=0.0)
        assert sched.total_energy == pytest.approx(1.4)

"""Unit tests for :mod:`repro.timeseries.stats`."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.errors import DataError
from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis, axis_for_days
from repro.timeseries.series import TimeSeries
from repro.timeseries.stats import (
    autocorrelation,
    autocorrelation_function,
    coefficient_of_variation,
    correlation,
    cross_correlation_best_lag,
    describe,
    load_factor,
    peak_to_average_ratio,
    shannon_entropy,
    sparseness,
    temporal_dispersion,
    zero_fraction,
)

START = datetime(2012, 3, 5)


def series_of(values) -> TimeSeries:
    axis = TimeAxis(START, FIFTEEN_MINUTES, len(values))
    return TimeSeries(axis, values)


class TestCorrelation:
    def test_perfect_correlation(self):
        a = series_of(np.arange(10.0))
        b = series_of(np.arange(10.0) * 2 + 1)
        assert correlation(a, b) == pytest.approx(1.0)

    def test_anticorrelation(self):
        a = series_of(np.arange(10.0))
        b = series_of(-np.arange(10.0))
        assert correlation(a, b) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        a = series_of(np.ones(10))
        b = series_of(np.arange(10.0))
        assert correlation(a, b) == 0.0

    def test_too_short_raises(self):
        with pytest.raises(DataError):
            correlation(series_of([1.0]), series_of([1.0]))


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        series = series_of(np.random.default_rng(0).normal(size=50))
        assert autocorrelation(series, 0) == pytest.approx(1.0)

    def test_periodic_signal_peaks_at_period(self):
        t = np.arange(96 * 4)
        series = series_of(np.sin(2 * np.pi * t / 96))
        acf = autocorrelation_function(series, 96)
        # The biased estimator shrinks by (n - lag) / n: at lag 96 of a
        # 384-sample pure sinusoid the expected value is 0.75.
        assert acf[96] == pytest.approx(0.75, abs=0.02)
        assert acf[48] == pytest.approx(-0.875, abs=0.02)  # anti-phase

    def test_constant_series(self):
        series = series_of(np.ones(20))
        assert autocorrelation(series, 0) == 1.0
        assert autocorrelation(series, 3) == 0.0

    def test_invalid_lag_raises(self):
        series = series_of(np.ones(10))
        with pytest.raises(DataError):
            autocorrelation(series, 10)
        with pytest.raises(DataError):
            autocorrelation(series, -1)


class TestSparseness:
    def test_flat_series_is_zero(self):
        assert sparseness(series_of(np.ones(16))) == pytest.approx(0.0)

    def test_single_spike_is_one(self):
        values = np.zeros(16)
        values[5] = 3.0
        assert sparseness(series_of(values)) == pytest.approx(1.0)

    def test_intermediate_ordering(self):
        spiky = np.zeros(16)
        spiky[2] = spiky[9] = 1.0
        spread = np.ones(16) * 0.125
        assert sparseness(series_of(spiky)) > sparseness(series_of(spread))

    def test_all_zero_series(self):
        assert sparseness(series_of(np.zeros(8))) == 0.0

    def test_too_short_raises(self):
        with pytest.raises(DataError):
            sparseness(series_of([1.0]))


class TestShapeIndicators:
    def test_zero_fraction(self):
        assert zero_fraction(series_of([0, 0, 1, 2])) == 0.5

    def test_peak_to_average(self):
        assert peak_to_average_ratio(series_of([1, 1, 1, 5])) == pytest.approx(2.5)
        assert peak_to_average_ratio(series_of(np.zeros(4))) == 0.0

    def test_load_factor_inverse_of_par(self):
        series = series_of([1, 1, 1, 5])
        assert load_factor(series) == pytest.approx(0.4)
        assert load_factor(series_of(np.zeros(4))) == 0.0

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation(series_of(np.ones(8))) == 0.0
        assert coefficient_of_variation(series_of([0, 2, 0, 2])) == pytest.approx(1.0)

    def test_shannon_entropy_flat_vs_diverse(self):
        flat = series_of(np.ones(64))
        diverse = series_of(np.arange(64.0))
        assert shannon_entropy(flat) < shannon_entropy(diverse)
        with pytest.raises(DataError):
            shannon_entropy(flat, bins=1)


class TestTemporalDispersion:
    def test_concentrated_energy_low_dispersion(self):
        axis = axis_for_days(START, 3)
        values = np.zeros(axis.length)
        values[76::96] = 5.0  # 19:00 every day
        concentrated = TimeSeries(axis, values)
        uniform = TimeSeries(axis, np.ones(axis.length))
        assert temporal_dispersion(concentrated) < temporal_dispersion(uniform)

    def test_zero_series(self):
        axis = axis_for_days(START, 1)
        assert temporal_dispersion(TimeSeries.zeros(axis)) == 0.0


class TestCrossCorrelation:
    def test_recovers_known_lag(self):
        rng = np.random.default_rng(7)
        base = rng.normal(size=200)
        lag = 5
        a = series_of(base)
        b = series_of(np.roll(base, lag))
        best_lag, best_corr = cross_correlation_best_lag(a, b, max_lag=10)
        assert best_lag == lag
        assert best_corr > 0.9

    def test_max_lag_bounds(self):
        series = series_of(np.arange(10.0))
        with pytest.raises(DataError):
            cross_correlation_best_lag(series, series, max_lag=10)


class TestDescribe:
    def test_describe_keys_and_values(self):
        series = series_of([0, 1, 2, 3])
        report = describe(series)
        assert report["total"] == 6.0
        assert report["max"] == 3.0
        assert set(report) >= {"mean", "std", "peak_to_average", "sparseness"}

"""Failure injection: extractors and substrates on degenerate inputs.

Production meter data contains dead meters (all zeros), outages, spikes and
resets; these tests pin down the library's behaviour on such inputs: no
crashes, no silent nonsense — either empty results or explicit errors.
"""

from __future__ import annotations

import re
from datetime import datetime

import numpy as np
import pytest

from repro.api.registry import create_extractor
from repro.api.service import FlexibilityService
from repro.pipeline.fleet import FleetPipeline
from repro.pipeline.sharedmem import leaked_segments
from repro.disaggregation.baseline import remove_baseline
from repro.disaggregation.matching import match_pursuit
from repro.appliances.database import default_database
from repro.errors import DataError, RegistryError
from repro.extraction import (
    BasicExtractor,
    FlexOfferParams,
    PeakBasedExtractor,
    RandomBaselineExtractor,
)
from repro.extraction.multitariff import MultiTariffExtractor
from repro.simulation.tariff import night_tariff
from repro.timeseries.axis import ONE_MINUTE, TimeAxis, axis_for_days
from repro.timeseries.clean import clip_outliers, fill_missing, validate_meter_series
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)
PARAMS = FlexOfferParams(flexible_share=0.05)


class TestDeadMeter:
    """All-zero consumption: extraction must return cleanly empty results."""

    @pytest.fixture()
    def dead_series(self):
        return TimeSeries.zeros(axis_for_days(START, 2))

    def test_basic_on_zeros(self, dead_series, rng):
        result = BasicExtractor(params=PARAMS).extract(dead_series, rng)
        assert result.offers == []
        assert result.modified == dead_series

    def test_peak_based_on_zeros(self, dead_series, rng):
        result = PeakBasedExtractor(params=PARAMS).extract(dead_series, rng)
        assert result.offers == []

    def test_random_baseline_on_zeros(self, dead_series, rng):
        # The random baseline is input-blind by design: it still generates.
        result = RandomBaselineExtractor().extract(dead_series, rng)
        assert result.offers

    def test_matching_on_zeros(self):
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        result = match_pursuit(TimeSeries.zeros(axis), default_database())
        assert result.detections == []
        assert result.residual.total() == 0.0

    def test_baseline_removal_on_zeros(self):
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        appliance, base = remove_baseline(TimeSeries.zeros(axis))
        assert appliance.total() == 0.0
        assert base.total() == 0.0


class TestSpikesAndGaps:
    def test_extraction_after_outlier_repair(self, rng):
        axis = axis_for_days(START, 1)
        values = np.random.default_rng(0).uniform(0.2, 0.5, axis.length)
        values[40] = 500.0  # meter glitch
        dirty = TimeSeries(axis, values)
        repaired, clipped = clip_outliers(dirty)
        assert clipped == 1
        result = PeakBasedExtractor(params=PARAMS).extract(repaired, rng)
        # Extraction budget must not be dominated by the glitch.
        assert result.extracted_energy < 0.1 * dirty.total()

    def test_extraction_after_gap_fill(self, rng):
        axis = axis_for_days(START, 3)
        base = np.tile(np.sin(np.linspace(0, 2 * np.pi, 96)) + 1.5, 3)
        missing = np.zeros(axis.length, dtype=bool)
        missing[100:120] = True
        damaged = base.copy()
        damaged[missing] = 0.0
        filled = fill_missing(TimeSeries(axis, damaged), missing)
        result = BasicExtractor(params=PARAMS).extract(filled, rng)
        assert result.energy_conservation_error() < 1e-9
        report = validate_meter_series(filled)
        assert report.negative == 0

    def test_quality_gate_for_hopeless_series(self):
        axis = axis_for_days(START, 10)
        missing = np.zeros(axis.length, dtype=bool)
        missing[: 96 * 8] = True
        report = validate_meter_series(TimeSeries.zeros(axis), missing)
        assert not report.usable


class TestConstantLoad:
    """A perfectly flat load has no peaks and no shape information."""

    def test_peak_based_flat(self, rng):
        series = TimeSeries.full(axis_for_days(START, 1), 0.4)
        result = PeakBasedExtractor(params=PARAMS).extract(series, rng)
        assert result.offers == []

    def test_basic_flat_still_extracts_share(self, rng):
        series = TimeSeries.full(axis_for_days(START, 1), 0.4)
        result = BasicExtractor(params=PARAMS).extract(series, rng)
        assert result.extracted_share == pytest.approx(0.05, rel=0.01)


class TestMultiTariffDegenerate:
    def test_identical_series_yields_near_nothing(self, rng, fleet):
        reference = fleet.traces[0].metered()
        extractor = MultiTariffExtractor(reference=reference, scheme=night_tariff())
        result = extractor.extract(reference, rng)
        # Self-comparison: only day-to-day variation can be misread as a
        # shift; must be a small fraction of total consumption.
        assert result.extracted_energy < 0.05 * reference.total()

    def test_flat_reference_flat_observed(self, rng):
        flat = TimeSeries.full(axis_for_days(START, 7), 0.3)
        extractor = MultiTariffExtractor(reference=flat, scheme=night_tariff())
        result = extractor.extract(flat, rng)
        assert result.offers == []


class TestRegistryFailureInjection:
    """Registry-constructed extractors on bad params and bad inputs.

    The registry is the construction surface for every string-driven
    caller (CLI, run specs, conformance matrix); its error messages are
    operator-facing contract and are pinned verbatim.
    """

    def test_unknown_approach_suggests_and_lists(self):
        with pytest.raises(
            RegistryError,
            match=re.escape(
                "unknown extractor 'frequenzy-based' "
                "(did you mean 'frequency-based'?); available: "
            ),
        ):
            create_extractor("frequenzy-based")

    def test_unknown_parameter_names_accepted_set(self):
        with pytest.raises(
            RegistryError,
            match=re.escape(
                "extractor 'peak-based' has no parameter 'bogus'; accepted: "
            ),
        ):
            create_extractor("peak-based", bogus=1)

    def test_missing_required_parameter(self):
        with pytest.raises(
            RegistryError,
            match=re.escape(
                "extractor 'multi-tariff' requires parameter(s) 'reference' "
                "(e.g. the multi-tariff approach needs a one-tariff "
                "reference series of the same consumer)"
            ),
        ):
            create_extractor("multi-tariff")

    def test_bad_value_routed_into_nested_config(self):
        with pytest.raises(
            RegistryError,
            match=re.escape(
                "extractor 'basic': flexible_share must be in (0, 1], got -2.0"
            ),
        ):
            create_extractor("basic", flexible_share=-2.0)

    def test_bad_engine_through_registry(self):
        with pytest.raises(
            RegistryError,
            match=re.escape(
                "extractor 'frequency-based': engine must be one of "
                "('vectorized', 'reference'), got 'turbo'"
            ),
        ):
            create_extractor("frequency-based", engine="turbo")

    def test_wrong_input_grid_rejected_before_extraction(self, fleet):
        metered = fleet.traces[0].metered()  # 15-minute grid
        with pytest.raises(
            RegistryError,
            match=re.escape(
                "approach 'frequency-based' requires input on the "
                "1-minute grid, got 0:15:00 resolution"
            ),
        ):
            FlexibilityService().extract("frequency-based", metered)

    def test_nan_laden_series_rejected_at_the_door(self):
        # NaN never reaches an extractor: the series type refuses to hold it
        # (gap channels are explicit masks, see timeseries.clean).
        axis = axis_for_days(START, 1)
        values = np.full(axis.length, 0.3)
        values[10] = np.nan
        with pytest.raises(DataError, match=re.escape("values contain NaN")):
            TimeSeries(axis, values)

    def test_registry_extractors_survive_dead_meters(self, rng):
        dead = TimeSeries.zeros(axis_for_days(START, 2))
        for name in ("basic", "peak-based"):
            result = create_extractor(name, flexible_share=0.05).extract(dead, rng)
            assert result.offers == []
            assert result.energy_conservation_error() < 1e-9


class _ExplodingExtractor:
    """An extractor that fails on every household.

    Module-level so the worker pool can pickle it; used to drive the fleet
    fan-out's failure paths.
    """

    def extract(self, series, rng):
        raise RuntimeError("injected chunk failure")


class TestWorkerPoolTeardown:
    """A raising chunk must release the pool and every shared segment.

    The coordinator owns the shared fleet matrix; whatever a worker does —
    including blowing up mid-chunk — the run must surface the error and
    leave ``/dev/shm`` exactly as it found it.
    """

    def test_shared_memory_fanout_releases_segments_on_failure(self, fleet):
        pipeline = FleetPipeline(
            extractor=_ExplodingExtractor(), workers=2, chunk_size=2
        )
        with pytest.raises(RuntimeError, match="injected chunk failure"):
            pipeline.run(fleet)
        assert leaked_segments() == []

    def test_pickling_fanout_surfaces_failure(self, fleet):
        pipeline = FleetPipeline(
            extractor=_ExplodingExtractor(),
            workers=2,
            chunk_size=2,
            shared_memory=False,
        )
        with pytest.raises(RuntimeError, match="injected chunk failure"):
            pipeline.run(fleet)
        assert leaked_segments() == []

    def test_in_process_failure_touches_no_segments(self, fleet):
        pipeline = FleetPipeline(extractor=_ExplodingExtractor(), workers=1)
        with pytest.raises(RuntimeError, match="injected chunk failure"):
            pipeline.run(fleet)
        assert leaked_segments() == []


class TestFaultHarnessWorkerDeath:
    """Real process-pool workers killed by the fault harness.

    The dispatch layer's contract: a worker death (``os._exit`` mid-chunk,
    the shape of an OOM kill) is recovered — by a rebuilt pool when the
    fault was transient, by in-process degradation when it is persistent —
    and the results are bitwise the no-fault run's either way.
    """

    RETRY = None  # set in setup to keep the import at use-site

    def _retry(self, **kwargs):
        from repro.pipeline.dispatch import RetryPolicy

        kwargs.setdefault("backoff_base_seconds", 0.0)
        kwargs.setdefault("backoff_max_seconds", 0.0)
        return RetryPolicy(**kwargs)

    def test_transient_fleet_worker_crash_retries_to_identical_results(
        self, fleet, tmp_path
    ):
        import warnings

        from repro.pipeline.fleet import results_identical, run_sequential
        from repro.testing import faults

        sequential = run_sequential(fleet, seed=0)
        pipeline = FleetPipeline(
            workers=2, chunk_size=2, seed=0, retry=self._retry()
        )
        with faults.inject_faults(
            faults.FaultSpec("fleet-chunk", index=1), latch_dir=str(tmp_path)
        ):
            with warnings.catch_warnings():
                # One latched crash is absorbed by a retry: no degradation.
                warnings.simplefilter("error")
                result = pipeline.run(fleet)
        assert results_identical(result, sequential)
        assert leaked_segments() == []
        # The latch proves the worker really died once.
        assert list(tmp_path.glob("fired-fleet-chunk-*"))

    def test_persistent_fleet_worker_crash_degrades_to_identical_results(
        self, fleet
    ):
        from repro.errors import DegradedExecutionWarning
        from repro.pipeline.fleet import results_identical, run_sequential
        from repro.testing import faults

        sequential = run_sequential(fleet, seed=0)
        pipeline = FleetPipeline(
            workers=2, chunk_size=2, seed=0,
            retry=self._retry(max_attempts=2),
        )
        # No latch directory: the crash fires on every delivery, so the
        # chunk exhausts its attempts and finishes in-process.
        with faults.inject_faults(faults.FaultSpec("fleet-chunk", index=0)):
            with pytest.warns(DegradedExecutionWarning, match="in-process"):
                result = pipeline.run(fleet)
        assert results_identical(result, sequential)
        assert leaked_segments() == []

    def test_shm_creation_failure_falls_back_to_pickled_dispatch(self, fleet):
        from repro.errors import DegradedExecutionWarning
        from repro.pipeline.fleet import results_identical, run_sequential
        from repro.testing import faults

        sequential = run_sequential(fleet, seed=0)
        pipeline = FleetPipeline(workers=2, chunk_size=2, seed=0)
        # A full /dev/shm must degrade the transport, never the run.
        with faults.inject_faults(faults.FaultSpec("shm-create", mode="oserror")):
            with pytest.warns(DegradedExecutionWarning, match="pickled dispatch"):
                result = pipeline.run(fleet)
        assert results_identical(result, sequential)
        assert leaked_segments() == []

    def test_zone_worker_crash_recovers_identical_schedule(self, fleet):
        from repro.errors import DegradedExecutionWarning
        from repro.pipeline.fleet import fleet_zoned_target
        from repro.scheduling.zones import schedule_zones
        from repro.testing import faults

        extractor = create_extractor("peak-based", flexible_share=0.05)
        aggregates = FleetPipeline(extractor, chunk_size=2).run(fleet).aggregates
        zoned = fleet_zoned_target(fleet, zones=2)
        sequential = schedule_zones(aggregates, zoned)
        with faults.inject_faults(faults.FaultSpec("zone-worker", index=0)):
            with pytest.warns(DegradedExecutionWarning, match="in-process"):
                fanned = schedule_zones(
                    aggregates, zoned, workers=2,
                    retry=self._retry(max_attempts=1),
                )
        assert fanned == sequential

    def test_conformance_worker_crash_recovers_identical_report(self):
        from repro.conformance import run_conformance
        from repro.errors import DegradedExecutionWarning
        from repro.testing import faults

        kwargs = dict(
            scenarios=["seasonal-summer"],
            extractors=["basic", "peak-based"],
            invariants=["offer-validity"],
        )
        in_process = run_conformance(**kwargs)
        with faults.inject_faults(faults.FaultSpec("conformance-cell", index=0)):
            with pytest.warns(DegradedExecutionWarning, match="in-process"):
                report = run_conformance(**kwargs, workers=2)
        assert report.to_dict() == in_process.to_dict()
        assert report.passed


class TestTinyHorizons:
    def test_single_interval_series(self, rng):
        axis = TimeAxis(START, axis_for_days(START, 1).resolution, 1)
        series = TimeSeries(axis, [0.5])
        result = BasicExtractor(params=PARAMS).extract(series, rng)
        # One interval: a 1-slice offer or nothing; never a crash.
        assert len(result.offers) <= 1
        result = PeakBasedExtractor(params=PARAMS).extract(series, rng)
        assert len(result.offers) <= 1

    def test_partial_day(self, rng):
        axis = TimeAxis(START, axis_for_days(START, 1).resolution, 10)
        series = TimeSeries(axis, np.linspace(0.1, 1.0, 10))
        result = PeakBasedExtractor(params=PARAMS).extract(series, rng)
        assert result.energy_conservation_error() < 1e-9

"""Unit tests for :mod:`repro.flexoffer.model` (paper Figure 1 semantics)."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.errors import ValidationError
from repro.flexoffer.model import (
    FlexOffer,
    OfferIdFactory,
    ProfileSlice,
    figure1_flexoffer,
    next_offer_id,
    offer_id_scope,
    uniform_profile,
)
from repro.timeseries.axis import FIFTEEN_MINUTES

START = datetime(2012, 3, 5, 18, 0)


def simple_offer(**overrides) -> FlexOffer:
    defaults = dict(
        earliest_start=START,
        latest_start=START + timedelta(hours=2),
        slices=(ProfileSlice(0.5, 1.0), ProfileSlice(0.25, 0.5)),
    )
    defaults.update(overrides)
    return FlexOffer(**defaults)


class TestProfileSlice:
    def test_valid_slice(self):
        sl = ProfileSlice(0.5, 1.0)
        assert sl.energy_range == 0.5
        assert sl.midpoint == 0.75

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            ProfileSlice(1.0, 0.5)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValidationError):
            ProfileSlice(0.5, 1.0, duration=0)

    def test_equal_bounds_allowed(self):
        sl = ProfileSlice(1.0, 1.0)
        assert sl.energy_range == 0.0

    def test_scaled(self):
        sl = ProfileSlice(0.5, 1.0).scaled(2.0)
        assert (sl.energy_min, sl.energy_max) == (1.0, 2.0)
        with pytest.raises(ValidationError):
            ProfileSlice(0.5, 1.0).scaled(-1.0)

    def test_uniform_profile(self):
        slices = uniform_profile(4.0, 8.0, 4)
        assert len(slices) == 4
        assert sum(s.energy_min for s in slices) == pytest.approx(4.0)
        assert sum(s.energy_max for s in slices) == pytest.approx(8.0)
        with pytest.raises(ValidationError):
            uniform_profile(1.0, 2.0, 0)


class TestFlexOfferInvariants:
    def test_empty_profile_rejected(self):
        with pytest.raises(ValidationError):
            simple_offer(slices=())

    def test_inverted_start_window_rejected(self):
        with pytest.raises(ValidationError):
            simple_offer(latest_start=START - timedelta(minutes=15))

    def test_zero_flexibility_allowed(self):
        offer = simple_offer(latest_start=START)
        assert offer.time_flexibility == timedelta(0)

    def test_infeasible_total_bounds_rejected(self):
        with pytest.raises(ValidationError):
            simple_offer(total_energy_min=10.0, total_energy_max=None)
        # total_min (10) > slice max sum (1.5) -> infeasible


class TestDerivedAttributes:
    def test_durations(self):
        offer = simple_offer()
        assert offer.profile_intervals == 2
        assert offer.duration == timedelta(minutes=30)

    def test_latest_end_is_latest_start_plus_duration(self):
        offer = simple_offer()
        assert offer.latest_end == START + timedelta(hours=2, minutes=30)

    def test_time_flexibility(self):
        offer = simple_offer()
        assert offer.time_flexibility == timedelta(hours=2)
        assert offer.time_flexibility_intervals == 8

    def test_energy_bounds(self):
        offer = simple_offer()
        assert offer.profile_energy_min == pytest.approx(0.75)
        assert offer.profile_energy_max == pytest.approx(1.5)
        assert offer.energy_flexibility == pytest.approx(0.75)

    def test_explicit_totals_tighten_bounds(self):
        offer = simple_offer(total_energy_min=1.0, total_energy_max=1.2)
        assert offer.effective_total_bounds() == (1.0, 1.2)
        assert offer.energy_flexibility == pytest.approx(0.2)

    def test_multi_interval_slices(self):
        offer = simple_offer(slices=(ProfileSlice(1.0, 2.0, duration=4),))
        assert offer.profile_intervals == 4
        assert offer.duration == timedelta(hours=1)
        expansion = offer.slice_expansion()
        assert len(expansion) == 4
        assert expansion[0] == (0.25, 0.5)

    def test_is_production(self):
        consumption = simple_offer()
        assert not consumption.is_production
        production = simple_offer(slices=(ProfileSlice(-2.0, -1.0),))
        assert production.is_production


class TestTransformations:
    def test_shifted_moves_all_times(self):
        offer = simple_offer(
            creation_time=START - timedelta(hours=20),
            acceptance_deadline=START - timedelta(hours=10),
            assignment_deadline=START - timedelta(hours=1),
        )
        delta = timedelta(hours=3)
        moved = offer.shifted(delta)
        assert moved.earliest_start == offer.earliest_start + delta
        assert moved.latest_start == offer.latest_start + delta
        assert moved.creation_time == offer.creation_time + delta
        assert moved.time_flexibility == offer.time_flexibility

    def test_scaled_energies(self):
        offer = simple_offer().scaled(2.0)
        assert offer.profile_energy_min == pytest.approx(1.5)
        assert offer.profile_energy_max == pytest.approx(3.0)

    def test_with_time_flexibility(self):
        offer = simple_offer().with_time_flexibility(timedelta(hours=5))
        assert offer.time_flexibility == timedelta(hours=5)
        with pytest.raises(ValidationError):
            simple_offer().with_time_flexibility(timedelta(hours=-1))


class TestQueries:
    def test_feasible_starts_grid(self):
        offer = simple_offer(latest_start=START + timedelta(minutes=45))
        starts = offer.feasible_starts()
        assert len(starts) == 4
        assert starts[0] == START
        assert starts[-1] == START + timedelta(minutes=45)

    def test_zero_flexibility_single_start(self):
        offer = simple_offer(latest_start=START)
        assert offer.feasible_starts() == [START]

    def test_offer_ids_unique(self):
        ids = {next_offer_id() for _ in range(100)}
        assert len(ids) == 100


class TestOfferIdScopes:
    """The seedable id factory behind deterministic pipeline equality."""

    def test_factory_is_deterministic(self):
        first = OfferIdFactory("h3")
        second = OfferIdFactory("h3")
        assert [first.next_id() for _ in range(3)] == [
            second.next_id() for _ in range(3)
        ]
        assert first.next_id("agg") == "agg-h3-4"

    def test_scope_restarts_and_restores(self):
        outside = next_offer_id()
        with offer_id_scope("unit"):
            assert next_offer_id() == "fo-unit-1"
            assert next_offer_id("agg") == "agg-unit-2"
            with offer_id_scope("inner"):
                assert next_offer_id() == "fo-inner-1"
            assert next_offer_id() == "fo-unit-3"
        # The global counter resumes exactly where it left off.
        assert next_offer_id() != outside
        assert next_offer_id().startswith("fo-")

    def test_scoped_offers_reproducible(self):
        def build():
            with offer_id_scope("rep"):
                return figure1_flexoffer(datetime(2012, 3, 5))

        assert build().offer_id == build().offer_id

    def test_scope_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with offer_id_scope("boom"):
                raise RuntimeError("kaboom")
        assert "boom" not in next_offer_id()


class TestFigure1:
    """The paper's running example, all printed attributes."""

    def test_figure1_attributes(self):
        offer = figure1_flexoffer(datetime(2012, 3, 5))
        assert offer.earliest_start == datetime(2012, 3, 5, 22, 0)  # 10 PM
        assert offer.latest_start == datetime(2012, 3, 6, 5, 0)     # 5 AM
        assert offer.latest_end == datetime(2012, 3, 6, 7, 0)       # 7 AM
        assert offer.duration == timedelta(hours=2)                 # 2 h charge
        assert offer.profile_intervals == 8                         # 15-min slices
        tmin, tmax = offer.effective_total_bounds()
        assert tmin == pytest.approx(50.0)                          # 50 kWh
        assert tmax == pytest.approx(50.0)
        assert offer.time_flexibility == timedelta(hours=7)

"""Tests for the basic approach (Figure 4) and the §3.1 parameter model."""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.extraction.basic import BasicExtractor
from repro.extraction.params import FlexOfferParams
from repro.flexoffer.validate import PolicyLimits, check_all
from repro.workloads.paper_day import figure5_day


class TestFlexOfferParams:
    def test_defaults_valid(self):
        FlexOfferParams()

    def test_validation(self):
        with pytest.raises(ValidationError):
            FlexOfferParams(flexible_share=0.0)
        with pytest.raises(ValidationError):
            FlexOfferParams(flexible_share=1.5)
        with pytest.raises(ValidationError):
            FlexOfferParams(slices_min=0)
        with pytest.raises(ValidationError):
            FlexOfferParams(slices_min=9, slices_max=8)
        with pytest.raises(ValidationError):
            FlexOfferParams(energy_min_pct=(0.9, 0.7))
        with pytest.raises(ValidationError):
            FlexOfferParams(energy_max_pct=(0.9, 1.2))
        with pytest.raises(ValidationError):
            FlexOfferParams(
                time_flexibility_min=timedelta(hours=5),
                time_flexibility_max=timedelta(hours=1),
            )

    def test_draws_within_limits(self, rng):
        params = FlexOfferParams()
        for _ in range(100):
            n = params.draw_slice_count(rng)
            assert params.slices_min <= n <= params.slices_max
            low, high = params.draw_energy_band(rng)
            assert params.energy_min_pct[0] <= low <= params.energy_min_pct[1]
            assert params.energy_max_pct[0] <= high <= params.energy_max_pct[1]
            flex = params.draw_time_flexibility(rng)
            assert params.time_flexibility_min <= flex <= params.time_flexibility_max
            # Grid aligned:
            assert flex % params.resolution == timedelta(0)

    def test_deadline_lifecycle_order(self, rng):
        params = FlexOfferParams()
        earliest = figure5_day().series.axis.time_at(40)
        for _ in range(100):
            creation, acceptance, assignment = params.draw_deadlines(earliest, rng)
            assert creation <= acceptance <= assignment <= earliest

    def test_build_offer_conserves_midpoint(self, rng):
        params = FlexOfferParams()
        earliest = figure5_day().series.axis.time_at(10)
        energies = np.array([0.5, 0.3, 0.2])
        offer = params.build_offer(earliest, energies, rng, source="test")
        midpoint_sum = sum(s.midpoint for s in offer.slices)
        assert midpoint_sum == pytest.approx(1.0)
        # Band ordering retained.
        for s in offer.slices:
            assert s.energy_min <= s.energy_max

    def test_build_offer_explicit_band_and_flex(self, rng):
        params = FlexOfferParams()
        earliest = figure5_day().series.axis.time_at(10)
        offer = params.build_offer(
            earliest,
            np.array([1.0]),
            rng,
            source="test",
            time_flexibility=timedelta(hours=3),
            energy_band=(0.5, 1.5),
        )
        assert offer.time_flexibility == timedelta(hours=3)
        # (0.5, 1.5) recentred on 1.0 stays (0.5, 1.5).
        assert offer.slices[0].energy_min == pytest.approx(0.5)
        assert offer.slices[0].energy_max == pytest.approx(1.5)

    def test_build_offer_rejects_bad_energies(self, rng):
        params = FlexOfferParams()
        earliest = figure5_day().series.axis.time_at(10)
        with pytest.raises(ValidationError):
            params.build_offer(earliest, np.array([]), rng, source="t")
        with pytest.raises(ValidationError):
            params.build_offer(earliest, np.array([-0.1]), rng, source="t")


class TestBasicExtractor:
    def test_four_offers_per_day(self, paper_day, rng):
        """Figure 4 shows four flex-offers, one per 6-hour period."""
        extractor = BasicExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        assert len(result.offers) == 4

    def test_energy_conservation(self, paper_day, rng):
        extractor = BasicExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        assert result.energy_conservation_error() < 1e-9
        assert result.extracted_share == pytest.approx(0.05, rel=0.05)

    def test_offers_in_their_own_periods(self, paper_day, rng):
        """Each Figure 4 offer occupies its own period of the time axis."""
        extractor = BasicExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        axis = paper_day.series.axis
        per_period = 24  # 6 h of 15-min intervals
        for k, offer in enumerate(result.offers):
            first = axis.index_of(offer.earliest_start)
            assert k * per_period <= first < (k + 1) * per_period

    def test_modified_nonnegative(self, paper_day, rng):
        extractor = BasicExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        assert result.modified.is_nonnegative()
        # Modified + extracted == original, interval-wise.
        recon = result.modified + result.extracted_series()
        assert recon.allclose(paper_day.series)

    def test_share_sweep_01_to_65_percent(self, paper_day):
        """The paper's [7] band: 0.1-6.5 % of consumption is flexible."""
        for share in (0.001, 0.01, 0.03, 0.065):
            extractor = BasicExtractor(params=FlexOfferParams(flexible_share=share))
            result = extractor.extract(paper_day.series, np.random.default_rng(1))
            assert result.extracted_share == pytest.approx(share, rel=0.05)

    def test_attributes_within_limits(self, paper_day, rng):
        params = FlexOfferParams(flexible_share=0.05)
        result = BasicExtractor(params=params).extract(paper_day.series, rng)
        limits = PolicyLimits(
            max_slices=params.slices_max,
            max_time_flexibility=params.time_flexibility_max,
        )
        assert check_all(result.offers, limits) == []

    def test_custom_period(self, paper_day, rng):
        extractor = BasicExtractor(
            params=FlexOfferParams(flexible_share=0.05), period_hours=12
        )
        result = extractor.extract(paper_day.series, rng)
        assert len(result.offers) == 2

    def test_period_validation(self):
        with pytest.raises(Exception):
            BasicExtractor(period_hours=0)

    def test_multiday(self, fleet, rng):
        extractor = BasicExtractor(params=FlexOfferParams(flexible_share=0.02))
        result = extractor.extract(fleet.traces[0].metered(), rng)
        assert len(result.offers) == pytest.approx(4 * 7, abs=3)
        assert result.energy_conservation_error() < 1e-6

"""Tests for the appliance-level approaches (§4.1 frequency, §4.2 schedule)."""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.appliances.database import default_database
from repro.errors import ExtractionError
from repro.extraction.frequency_based import (
    FrequencyBasedExtractor,
    slice_energies_on_grid,
)
from repro.extraction.schedule_based import ScheduleBasedExtractor
from repro.timeseries.axis import FIFTEEN_MINUTES
from repro.timeseries.calendar import DayType, day_type


class TestSliceBucketing:
    def test_aligned_start(self):
        removal = np.ones(30) / 30  # 1 kWh over 30 min
        grid_index, energies = slice_energies_on_grid(removal, 15)
        assert grid_index == 1
        assert energies == pytest.approx([0.5, 0.5])

    def test_misaligned_start(self):
        removal = np.ones(30) / 30
        grid_index, energies = slice_energies_on_grid(removal, 20)
        assert grid_index == 1
        # 10 minutes in interval 1, 15 in interval 2, 5 in interval 3.
        assert energies == pytest.approx([10 / 30, 15 / 30, 5 / 30])

    def test_total_energy_preserved(self):
        rng = np.random.default_rng(0)
        removal = rng.uniform(0, 0.1, size=97)
        _, energies = slice_energies_on_grid(removal, 7)
        assert energies.sum() == pytest.approx(removal.sum())


@pytest.fixture(scope="module")
def freq_extraction(request):
    trace = request.getfixturevalue("nilm_trace")
    extractor = FrequencyBasedExtractor(database=default_database())
    return extractor.extract(trace.total, np.random.default_rng(0))


@pytest.fixture(scope="module")
def sched_extraction(request):
    trace = request.getfixturevalue("nilm_trace")
    extractor = ScheduleBasedExtractor(database=default_database())
    return extractor.extract(trace.total, np.random.default_rng(0))


class TestFrequencyBased:
    def test_requires_minute_data(self, nilm_trace):
        extractor = FrequencyBasedExtractor()
        with pytest.raises(ExtractionError):
            extractor.extract(nilm_trace.metered(), np.random.default_rng(0))

    def test_produces_offers(self, freq_extraction):
        assert len(freq_extraction.offers) >= 5

    def test_energy_conservation(self, freq_extraction):
        assert freq_extraction.energy_conservation_error() < 1e-6

    def test_only_flexible_appliances(self, freq_extraction):
        db = default_database()
        for offer in freq_extraction.offers:
            assert db.get(offer.appliance).flexible

    def test_offers_carry_spec_time_flexibility(self, freq_extraction):
        db = default_database()
        for offer in freq_extraction.offers:
            spec = db.get(offer.appliance)
            assert offer.time_flexibility <= spec.time_flexibility
            assert offer.time_flexibility >= spec.time_flexibility - FIFTEEN_MINUTES

    def test_vacuum_offers_have_22h_flexibility(self, freq_extraction):
        vacuum = [o for o in freq_extraction.offers if o.appliance == "vacuum-robot-x"]
        if vacuum:  # detection-dependent, but typically present
            for offer in vacuum:
                assert offer.time_flexibility == timedelta(hours=22)

    def test_shortlist_in_extras(self, freq_extraction, nilm_trace):
        shortlist = freq_extraction.extras["shortlist"]
        assert len(shortlist) >= 2
        true_flexible = {a.appliance for a in nilm_trace.activations if a.flexible}
        listed_flexible = {e.appliance for e in shortlist.flexible_entries()}
        assert listed_flexible & true_flexible

    def test_modified_nonnegative(self, freq_extraction):
        assert freq_extraction.modified.is_nonnegative()

    def test_extracted_energy_close_to_true_flexible(self, freq_extraction, nilm_trace):
        true_flexible = sum(a.energy_kwh for a in nilm_trace.activations if a.flexible)
        assert freq_extraction.extracted_energy >= 0.35 * true_flexible
        assert freq_extraction.extracted_energy <= 1.3 * true_flexible

    def test_profiles_on_metering_grid(self, freq_extraction):
        for offer in freq_extraction.offers:
            assert offer.resolution == FIFTEEN_MINUTES
            assert offer.earliest_start.minute % 15 == 0


class TestScheduleBased:
    def test_requires_minute_data(self, nilm_trace):
        extractor = ScheduleBasedExtractor()
        with pytest.raises(ExtractionError):
            extractor.extract(nilm_trace.metered(), np.random.default_rng(0))

    def test_produces_offers_and_conserves(self, sched_extraction):
        assert len(sched_extraction.offers) >= 5
        assert sched_extraction.energy_conservation_error() < 1e-6

    def test_mined_schedules_in_extras(self, sched_extraction):
        schedules = sched_extraction.extras["schedules"]
        assert schedules
        for mined in schedules.values():
            assert set(mined.windows) == set(DayType)

    def test_habit_confined_flexibility_tighter(self, sched_extraction, freq_extraction):
        """Schedule-based offers have (weakly) tighter time flexibility."""
        freq_mean = np.mean(
            [o.time_flexibility.total_seconds() for o in freq_extraction.offers]
        )
        sched_mean = np.mean(
            [o.time_flexibility.total_seconds() for o in sched_extraction.offers]
        )
        assert sched_mean <= freq_mean + 1e-9

    def test_offer_windows_cover_observed_usage(self, sched_extraction):
        """earliest_start <= the observed (removed) energy position."""
        for offer in sched_extraction.offers:
            assert offer.latest_start >= offer.earliest_start

    def test_flexibility_never_exceeds_spec(self, sched_extraction):
        db = default_database()
        for offer in sched_extraction.offers:
            spec = db.get(offer.appliance)
            assert offer.time_flexibility <= spec.time_flexibility

    def test_modified_nonnegative(self, sched_extraction):
        assert sched_extraction.modified.is_nonnegative()


class TestScheduleBasedContainment:
    def test_offer_window_contains_observed_start(self, sched_extraction):
        """The run that actually happened must be schedulable by its offer.

        The removal is anchored at the observed (snapped) start; the offer's
        [earliest, latest] window must contain that instant, otherwise the
        offer could never reproduce the historical behaviour.
        """
        result = sched_extraction
        detections = {
            (a.appliance, a.start): a for a in result.extras["detection"].detections
        }
        for offer in result.offers:
            # Find the detection this offer was formulated from: same
            # appliance, observed start within the offer's day.
            candidates = [
                a for (app, _), a in detections.items()
                if app == offer.appliance
                and offer.earliest_start <= a.start
                and a.start < offer.earliest_start + timedelta(days=1)
            ]
            assert candidates, f"no source detection for {offer.offer_id}"
            # At least one source run is inside the start window.
            grid = offer.resolution
            inside = [
                a for a in candidates
                if offer.earliest_start
                <= a.start.replace(second=0, microsecond=0)
                - timedelta(minutes=a.start.minute % 15)
                <= offer.latest_start
            ]
            assert inside, (
                f"{offer.offer_id}: window [{offer.earliest_start}, "
                f"{offer.latest_start}] contains no observed run"
            )

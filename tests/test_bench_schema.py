"""Golden-schema guards for benchmark output artefacts.

Four machine-readable bench artefacts are load-bearing outside this repo:
``BENCH_fleet.json`` (the committed fleet-pipeline speedup baseline),
``BENCH_schedule.json`` (the scheduling-engine speedup baseline),
``BENCH_zones.json`` (the zone-sharded multi-market baseline) and the
``--bench-json`` table dump ``benchmarks/conftest.py`` writes for CI
archiving.  Their *schemas* are pinned here — a drifted key, a renamed
stage or a silently dropped section fails loudly instead of breaking
downstream consumers at read time.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).parent / "data" / "golden"


def type_schema(value):
    """A value's recursive shape: dict keys → schemas, lists → first element.

    Numbers collapse to ``"number"`` (ints and floats drift freely in JSON),
    every other leaf keeps its JSON type name.
    """
    if isinstance(value, dict):
        return {key: type_schema(item) for key, item in sorted(value.items())}
    if isinstance(value, list):
        return [type_schema(value[0])] if value else []
    if isinstance(value, bool):
        return "bool"
    if value is None:
        return "null"
    if isinstance(value, (int, float)):
        return "number"
    return type(value).__name__


class TestFleetBenchBaseline:
    def test_bench_fleet_json_schema_matches_golden(self):
        report = json.loads((REPO_ROOT / "BENCH_fleet.json").read_text())
        golden = json.loads((GOLDEN / "bench_fleet_schema.json").read_text())
        assert type_schema(report) == golden

    def test_bench_fleet_json_semantics(self):
        report = json.loads((REPO_ROOT / "BENCH_fleet.json").read_text())
        assert report["speedup"] > 1.0
        assert report["equivalence"]["batched_equals_sequential"] is True
        assert report["equivalence"]["reference_matches_vectorized"] is True
        assert report["baseline"]["offers"] == report["pipeline"]["offers"]
        stages = report["pipeline"]["stages"]
        assert {
            "prepare",
            "disaggregate",
            "extract",
            "group",
            "aggregate",
            "schedule",
        } <= set(stages)
        # The timed run schedules every fleet aggregate on the wind target.
        schedule = report["schedule"]
        assert schedule["placed"] + schedule["unplaced"] == report["pipeline"][
            "aggregates"
        ]
        assert schedule["target_kwh"] > 0
        assert 0.0 <= schedule["improvement"] <= 1.0


class TestScheduleBenchBaseline:
    def test_bench_schedule_json_schema_matches_golden(self):
        report = json.loads((REPO_ROOT / "BENCH_schedule.json").read_text())
        golden = json.loads((GOLDEN / "bench_schedule_schema.json").read_text())
        assert type_schema(report) == golden

    def test_bench_schedule_json_semantics(self):
        report = json.loads((REPO_ROOT / "BENCH_schedule.json").read_text())
        assert report["workload"]["aggregates"] >= 200
        assert report["greedy"]["speedup"] >= 5.0
        equivalence = report["equivalence"]
        assert equivalence["placements_identical"] is True
        assert equivalence["cost_match"] is True
        assert equivalence["energies_match"] is True
        assert equivalence["fidelity_rtol"] == 1e-9
        assert report["improve"]["identical"] is True
        # The improver only ever lowers cost.
        assert report["improve"]["cost"] <= report["greedy"]["cost"] + 1e-9


class TestZonesBenchBaseline:
    def test_bench_zones_json_schema_matches_golden(self):
        report = json.loads((REPO_ROOT / "BENCH_zones.json").read_text())
        golden = json.loads((GOLDEN / "bench_zones_schema.json").read_text())
        assert type_schema(report) == golden

    def test_bench_zones_json_semantics(self):
        report = json.loads((REPO_ROOT / "BENCH_zones.json").read_text())
        workload = report["workload"]
        assert workload["aggregates"] >= 200
        assert workload["zones"] >= 2
        # Both assignment paths (explicit mapping, hash shard) exercised.
        assert 0 < workload["mapped_keys"] < workload["aggregates"]
        greedy = report["greedy"]
        assert greedy["speedup_vs_reference"] >= 2.0
        assert greedy["placed"] + greedy["unplaced"] == workload["aggregates"]
        equivalence = report["equivalence"]
        assert equivalence["incremental_identical_to_vectorized"] is True
        assert equivalence["reference_identical_placements"] is True
        assert equivalence["cost_match"] is True
        assert equivalence["workers_match_sequential"] is True
        assert equivalence["zone_partition"] is True
        assert equivalence["fidelity_rtol"] == 1e-9
        # Every zone is a real market: named, priced, offers routed to it.
        for zone in report["zones"]:
            assert zone["name"]
            assert zone["offers"] > 0
            assert zone["price_cap"] >= zone["price_floor"] >= 0


class TestBenchJsonWriter:
    @pytest.fixture(scope="class")
    def records(self, tmp_path_factory):
        """Run the smallest bench under ``--bench-json`` in a subprocess."""
        out = tmp_path_factory.mktemp("bench") / "tables.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "benchmarks/bench_fig1_flexoffer.py",
                "-q",
                "--bench-json",
                str(out),
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        return json.loads(out.read_text())

    def test_every_record_matches_golden_schema(self, records):
        golden = json.loads((GOLDEN / "bench_json_record_schema.json").read_text())
        assert records, "--bench-json wrote no records"
        for record in records:
            schema = type_schema(record)
            # Rows/lines are optional per record; the invariant is the
            # envelope: nodeid + title always present, payload keys known.
            assert set(schema) == set(golden)
            assert schema["test"] == golden["test"]
            assert schema["title"] == golden["title"]

    def test_records_carry_table_payload(self, records):
        assert any(record["rows"] for record in records)
        for record in records:
            assert record["test"].startswith("benchmarks/")
            assert record["title"]
            if record["rows"]:
                first_keys = set(record["rows"][0])
                assert all(set(row) == first_keys for row in record["rows"])

"""Golden-schema guards for benchmark output artefacts.

Seven machine-readable bench artefacts are load-bearing outside this repo:
``BENCH_fleet.json`` (the committed fleet-pipeline speedup baseline),
``BENCH_schedule.json`` (the scheduling-engine speedup baseline),
``BENCH_zones.json`` (the zone-sharded multi-market baseline),
``BENCH_scale.json`` (the million-household scale-out baseline),
``BENCH_market.json`` (the merit-order clearing baseline),
``BENCH_uncertainty.json`` (the robust quantile-fan scheduling baseline)
and the ``--bench-json`` table dump ``benchmarks/conftest.py`` writes for CI
archiving.  Their *schemas* are pinned here — a drifted key, a renamed
stage or a silently dropped section fails loudly instead of breaking
downstream consumers at read time.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).parent / "data" / "golden"


def type_schema(value):
    """A value's recursive shape: dict keys → schemas, lists → first element.

    Numbers collapse to ``"number"`` (ints and floats drift freely in JSON),
    every other leaf keeps its JSON type name.
    """
    if isinstance(value, dict):
        return {key: type_schema(item) for key, item in sorted(value.items())}
    if isinstance(value, list):
        return [type_schema(value[0])] if value else []
    if isinstance(value, bool):
        return "bool"
    if value is None:
        return "null"
    if isinstance(value, (int, float)):
        return "number"
    return type(value).__name__


class TestFleetBenchBaseline:
    def test_bench_fleet_json_schema_matches_golden(self):
        report = json.loads((REPO_ROOT / "BENCH_fleet.json").read_text())
        golden = json.loads((GOLDEN / "bench_fleet_schema.json").read_text())
        assert type_schema(report) == golden

    def test_bench_fleet_json_semantics(self):
        report = json.loads((REPO_ROOT / "BENCH_fleet.json").read_text())
        assert report["speedup"] > 1.0
        assert report["equivalence"]["batched_equals_sequential"] is True
        assert report["equivalence"]["reference_matches_vectorized"] is True
        assert report["baseline"]["offers"] == report["pipeline"]["offers"]
        stages = report["pipeline"]["stages"]
        assert {
            "prepare",
            "disaggregate",
            "extract",
            "group",
            "aggregate",
            "schedule",
        } <= set(stages)
        # The timed run schedules every fleet aggregate on the wind target.
        schedule = report["schedule"]
        assert schedule["placed"] + schedule["unplaced"] == report["pipeline"][
            "aggregates"
        ]
        assert schedule["target_kwh"] > 0
        assert 0.0 <= schedule["improvement"] <= 1.0


class TestScheduleBenchBaseline:
    def test_bench_schedule_json_schema_matches_golden(self):
        report = json.loads((REPO_ROOT / "BENCH_schedule.json").read_text())
        golden = json.loads((GOLDEN / "bench_schedule_schema.json").read_text())
        assert type_schema(report) == golden

    def test_bench_schedule_json_semantics(self):
        report = json.loads((REPO_ROOT / "BENCH_schedule.json").read_text())
        assert report["workload"]["aggregates"] >= 200
        assert report["greedy"]["speedup"] >= 5.0
        equivalence = report["equivalence"]
        assert equivalence["placements_identical"] is True
        assert equivalence["cost_match"] is True
        assert equivalence["energies_match"] is True
        assert equivalence["fidelity_rtol"] == 1e-9
        assert report["improve"]["identical"] is True
        # The improver only ever lowers cost.
        assert report["improve"]["cost"] <= report["greedy"]["cost"] + 1e-9


class TestZonesBenchBaseline:
    def test_bench_zones_json_schema_matches_golden(self):
        report = json.loads((REPO_ROOT / "BENCH_zones.json").read_text())
        golden = json.loads((GOLDEN / "bench_zones_schema.json").read_text())
        assert type_schema(report) == golden

    def test_bench_zones_json_semantics(self):
        report = json.loads((REPO_ROOT / "BENCH_zones.json").read_text())
        workload = report["workload"]
        assert workload["aggregates"] >= 200
        assert workload["zones"] >= 2
        # Both assignment paths (explicit mapping, hash shard) exercised.
        assert 0 < workload["mapped_keys"] < workload["aggregates"]
        greedy = report["greedy"]
        assert greedy["speedup_vs_reference"] >= 2.0
        assert greedy["placed"] + greedy["unplaced"] == workload["aggregates"]
        equivalence = report["equivalence"]
        assert equivalence["incremental_identical_to_vectorized"] is True
        assert equivalence["reference_identical_placements"] is True
        assert equivalence["cost_match"] is True
        assert equivalence["workers_match_sequential"] is True
        assert equivalence["zone_partition"] is True
        assert equivalence["fidelity_rtol"] == 1e-9
        # Every zone is a real market: named, priced, offers routed to it.
        for zone in report["zones"]:
            assert zone["name"]
            assert zone["offers"] > 0
            assert zone["price_cap"] >= zone["price_floor"] >= 0


class TestMarketBenchBaseline:
    def test_bench_market_json_schema_matches_golden(self):
        report = json.loads((REPO_ROOT / "BENCH_market.json").read_text())
        golden = json.loads((GOLDEN / "bench_market_schema.json").read_text())
        assert type_schema(report) == golden

    def test_bench_market_json_semantics(self):
        report = json.loads((REPO_ROOT / "BENCH_market.json").read_text())
        workload = report["workload"]
        assert workload["aggregates"] >= 200
        assert workload["zones"] >= 2
        # Both assignment paths (explicit mapping, hash shard) exercised.
        assert 0 < workload["mapped_keys"] < workload["aggregates"]
        clearing = report["clearing"]
        assert clearing["speedup"] >= 3.0
        # Every disposition and the spill pass are live on the baseline.
        assert clearing["accepted"] > 0
        assert clearing["partial"] > 0
        assert clearing["rejected"] > 0
        assert clearing["migrated"] > 0
        assert clearing["welfare_eur"] > 0
        assert (
            clearing["accepted"] + clearing["partial"] + clearing["rejected"]
            == workload["aggregates"]
        )
        equivalence = report["equivalence"]
        assert equivalence["acceptance_identical"] is True
        assert equivalence["settlements_identical"] is True
        assert equivalence["prices_identical"] is True
        assert equivalence["welfare_match"] is True
        assert equivalence["budget_balanced"] is True
        assert equivalence["fidelity_rtol"] == 1e-9
        # Per-zone books: settled revenue stays inside the price band.
        for zone in report["zones"]:
            assert zone["bids"] > 0
            assert zone["cleared_kwh"] >= 0
            assert zone["revenue_eur"] >= 0


class TestScaleBenchBaseline:
    def test_bench_scale_json_schema_matches_golden(self):
        report = json.loads((REPO_ROOT / "BENCH_scale.json").read_text())
        golden = json.loads((GOLDEN / "bench_scale_schema.json").read_text())
        assert type_schema(report) == golden

    def test_bench_scale_json_semantics(self):
        report = json.loads((REPO_ROOT / "BENCH_scale.json").read_text())
        # The throughput ladder covers the 1k/10k/100k rungs, each placing
        # the whole fleet through stream -> aggregate -> autotuned schedule.
        sizes = report["workload"]["sizes"]
        assert sizes == [1_000, 10_000, 100_000]
        for rung in report["throughput"]:
            assert rung["households_per_second"] > 0
            assert rung["placed"] + rung["unplaced"] == rung["aggregates"]
            assert rung["engine_resolved"] in ("vectorized", "incremental")
        # Shared-memory fan-out beats pickling dispatch by the gated factor
        # on the committed 10k-household matrix, with identical results.
        fanout = report["fanout"]
        assert fanout["households"] == 10_000
        assert fanout["meets_min_speedup"] is True
        assert fanout["speedup"] >= 2.0
        assert fanout["results_identical"] is True
        # Streaming aggregation's peak memory is O(chunk): tripling the
        # household count must not grow the tracemalloc peak ~3x, and the
        # streaming path must undercut materializing the offer list.
        streaming = report["streaming"]
        assert streaming["peak_is_chunk_bound"] is True
        assert streaming["peak_growth_at_3x_households"] < 2.0
        assert (
            streaming["streaming_peak_mb_small"]
            < streaming["materialized_peak_mb_small"]
        )
        # The engine-crossover sweep: the sparse end is a workload where
        # the incremental engine measurably beats the vectorized one and
        # engine="auto" picks it; the dense end flips; every rung bitwise.
        crossover = report["crossover"]
        assert crossover["sparse_winner_is_incremental"] is True
        assert crossover["auto_picks_sparse_winner"] is True
        assert crossover["auto_picks_dense_winner"] is True
        assert crossover["all_rungs_bitwise_identical"] is True
        sparse = crossover["rows"][-1]
        assert sparse["incremental_seconds"] < sparse["vectorized_seconds"]
        assert sparse["density"] < crossover["density_crossover"]


class TestUncertaintyBenchBaseline:
    def test_bench_uncertainty_json_schema_matches_golden(self):
        report = json.loads((REPO_ROOT / "BENCH_uncertainty.json").read_text())
        golden = json.loads((GOLDEN / "bench_uncertainty_schema.json").read_text())
        assert type_schema(report) == golden

    def test_bench_uncertainty_json_semantics(self):
        report = json.loads((REPO_ROOT / "BENCH_uncertainty.json").read_text())
        workload = report["workload"]
        assert workload["aggregates"] >= 200
        assert list(workload["quantiles"]) == sorted(workload["quantiles"])
        assert workload["risk"] in ("expected", "cvar")
        greedy = report["greedy"]
        # The acceptance gate: robust scoring costs at most 2x point mode.
        assert greedy["overhead_gate"] == 2.0
        assert greedy["meets_overhead_gate"] is True
        assert greedy["overhead"] <= greedy["overhead_gate"]
        assert greedy["placed"] + greedy["unplaced"] == workload["aggregates"]
        equivalence = report["equivalence"]
        assert equivalence["robust_reference_identical"] is True
        assert equivalence["deterministic_across_runs"] is True
        assert equivalence["fidelity_rtol"] == 1e-9
        # Realized-cost fan: one point/robust cost pair per quantile level,
        # and the risk measure's hedge shows up on the lowest quantile.
        realized = report["realized"]
        levels = realized["levels"]
        assert len(levels) == len(realized["point_costs"])
        assert len(levels) == len(realized["robust_costs"])
        assert realized["robust_costs"][0] <= realized["point_costs"][0]


class TestBenchJsonWriter:
    @pytest.fixture(scope="class")
    def records(self, tmp_path_factory):
        """Run the smallest bench under ``--bench-json`` in a subprocess."""
        out = tmp_path_factory.mktemp("bench") / "tables.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "benchmarks/bench_fig1_flexoffer.py",
                "-q",
                "--bench-json",
                str(out),
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        return json.loads(out.read_text())

    def test_every_record_matches_golden_schema(self, records):
        golden = json.loads((GOLDEN / "bench_json_record_schema.json").read_text())
        assert records, "--bench-json wrote no records"
        for record in records:
            schema = type_schema(record)
            # Rows/lines are optional per record; the invariant is the
            # envelope: nodeid + title always present, payload keys known.
            assert set(schema) == set(golden)
            assert schema["test"] == golden["test"]
            assert schema["title"] == golden["title"]

    def test_records_carry_table_payload(self, records):
        assert any(record["rows"] for record in records)
        for record in records:
            assert record["test"].startswith("benchmarks/")
            assert record["title"]
            if record["rows"]:
                first_keys = set(record["rows"][0])
                assert all(set(row) == first_keys for row in record["rows"])

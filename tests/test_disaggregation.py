"""Unit tests for the NILM substrate: baseline, events, matching, clustering."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.appliances.database import default_database
from repro.disaggregation.baseline import remove_baseline, rolling_baseline
from repro.disaggregation.clustering import (
    daily_profile_matrix,
    kmeans,
    typical_daily_profiles,
)
from repro.disaggregation.combinatorial import (
    CombinatorialConfig,
    disaggregate_combinatorial,
)
from repro.disaggregation.events import detect_edges, pair_edges
from repro.disaggregation.matching import MatchingConfig, match_pursuit
from repro.errors import DataError
from repro.evaluation.groundtruth import match_activations
from repro.simulation.activations import Activation, materialise
from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


def clean_two_appliance_day():
    """A synthetic day: flat base + one washer run + one dishwasher run."""
    db = default_database()
    wm = db.get("washing-machine-y")
    dw = db.get("dishwasher-z")
    axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
    acts = [
        Activation(wm.name, START + timedelta(hours=9), 2.0, wm.cycle_duration, True),
        Activation(dw.name, START + timedelta(hours=19), 1.6, dw.cycle_duration, True),
    ]
    appliances = materialise(acts, {wm.name: wm, dw.name: dw}, axis)
    base = TimeSeries.full(axis, 0.05 / 60)  # 50 W floor
    return (appliances + base), acts, db.restricted([wm.name, dw.name])


class TestBaseline:
    def test_flat_base_recovered(self):
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        base_level = 0.002
        series = TimeSeries.full(axis, base_level)
        baseline = rolling_baseline(series)
        assert np.allclose(baseline.values, base_level, atol=1e-6)

    def test_appliance_spike_removed(self):
        total, acts, _db = clean_two_appliance_day()
        appliance, base = remove_baseline(total)
        # The washer energy survives in the appliance component.
        true_energy = sum(a.energy_kwh for a in acts)
        assert appliance.total() == pytest.approx(true_energy, rel=0.25)
        # Decomposition adds back to the original.
        assert (appliance + base).allclose(total, atol=1e-9)

    def test_validation(self):
        axis = TimeAxis(START, ONE_MINUTE, 100)
        series = TimeSeries.zeros(axis)
        with pytest.raises(DataError):
            rolling_baseline(series, window_minutes=1)
        with pytest.raises(DataError):
            rolling_baseline(series, quantile=0.7)


class TestEdges:
    def test_detects_square_pulse(self):
        axis = TimeAxis(START, ONE_MINUTE, 240)
        values = np.zeros(240)
        values[60:120] = 2.0 / 60  # 2 kW pulse for an hour
        edges = detect_edges(TimeSeries(axis, values), threshold_kw=0.5)
        assert len(edges) == 2
        rising, falling = edges
        assert rising.rising and not falling.rising
        assert rising.delta_kw == pytest.approx(2.0, rel=0.05)
        assert rising.when == START + timedelta(minutes=60)

    def test_ramp_merged_into_one_edge(self):
        axis = TimeAxis(START, ONE_MINUTE, 120)
        values = np.zeros(120)
        values[50] = 1.0 / 60
        values[51] = 2.0 / 60
        values[52:80] = 3.0 / 60
        edges = detect_edges(TimeSeries(axis, values), threshold_kw=0.5)
        rising = [e for e in edges if e.rising]
        assert len(rising) == 1
        assert rising[0].delta_kw == pytest.approx(3.0, rel=0.05)

    def test_threshold_validation(self):
        axis = TimeAxis(START, ONE_MINUTE, 10)
        with pytest.raises(DataError):
            detect_edges(TimeSeries.zeros(axis), threshold_kw=0.0)

    def test_pair_edges(self):
        axis = TimeAxis(START, ONE_MINUTE, 240)
        values = np.zeros(240)
        values[60:120] = 2.0 / 60
        edges = detect_edges(TimeSeries(axis, values), threshold_kw=0.5)
        pairs = pair_edges(edges)
        assert len(pairs) == 1
        on, off = pairs[0]
        assert (off.when - on.when) == timedelta(minutes=60)

    def test_15min_granularity_loses_edges(self):
        """The paper's point: 15-minute data is too coarse for NILM."""
        total, _acts, _db = clean_two_appliance_day()
        from repro.timeseries.resample import downsample_sum

        fine_edges = detect_edges(total, threshold_kw=0.5)
        coarse = downsample_sum(total, FIFTEEN_MINUTES)
        coarse_edges = detect_edges(coarse, threshold_kw=0.5)
        assert len(fine_edges) > len(coarse_edges)


class TestMatchingPursuit:
    def test_clean_case_exact(self):
        total, acts, db = clean_two_appliance_day()
        result = match_pursuit(total, db)
        report = match_activations(result.detections, acts,
                                   start_tolerance=timedelta(minutes=5))
        assert report.recall == 1.0
        assert report.precision == 1.0
        assert report.energy_error_kwh < 0.2

    def test_detected_energy_in_spec_range(self):
        total, _acts, db = clean_two_appliance_day()
        result = match_pursuit(total, db)
        for det in result.detections:
            spec = db.get(det.appliance)
            assert spec.energy_min_kwh * 0.8 <= det.energy_kwh <= spec.energy_max_kwh * 1.2

    def test_residual_small_after_subtraction(self):
        total, acts, db = clean_two_appliance_day()
        result = match_pursuit(total, db)
        # base load (~1.2 kWh/day) plus small estimation error remains
        assert result.residual.total() < 2.0

    def test_empty_series_no_detections(self):
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        result = match_pursuit(TimeSeries.zeros(axis), default_database())
        assert result.detections == []

    def test_requires_minute_resolution(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        with pytest.raises(DataError):
            match_pursuit(TimeSeries.zeros(axis), default_database())

    def test_config_validation(self):
        with pytest.raises(DataError):
            MatchingConfig(max_iterations=0)
        with pytest.raises(DataError):
            MatchingConfig(min_score=0.0)

    def test_same_appliance_no_overlap(self):
        total, _acts, db = clean_two_appliance_day()
        result = match_pursuit(total, db)
        by_app = result.by_appliance()
        for name, dets in by_app.items():
            cycle = db.get(name).cycle_duration
            dets = sorted(dets, key=lambda a: a.start)
            for a, b in zip(dets, dets[1:]):
                assert b.start - a.start >= cycle

    def test_realistic_household_f1(self, nilm_trace):
        """On the full simulated household the matcher stays useful."""
        db = default_database()
        appliance, _ = remove_baseline(nilm_trace.total)
        result = match_pursuit(appliance, db)
        flex_det = [a for a in result.detections if a.flexible]
        flex_true = [a for a in nilm_trace.activations if a.flexible]
        report = match_activations(flex_det, flex_true,
                                   start_tolerance=timedelta(minutes=30))
        assert report.precision >= 0.6
        assert report.recall >= 0.4


class TestCombinatorial:
    def test_clean_case(self):
        total, acts, db = clean_two_appliance_day()
        appliance, _ = remove_baseline(total)
        result = disaggregate_combinatorial(appliance, db)
        report = match_activations(result.detections, acts,
                                   start_tolerance=timedelta(minutes=10))
        assert report.recall == 1.0

    def test_config_validation(self):
        with pytest.raises(DataError):
            CombinatorialConfig(max_candidates_per_day=0)
        with pytest.raises(DataError):
            CombinatorialConfig(max_subset_size=0)

    def test_requires_minute_resolution(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        with pytest.raises(DataError):
            disaggregate_combinatorial(TimeSeries.zeros(axis), default_database())


class TestKMeans:
    def test_two_obvious_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, size=(30, 4))
        b = rng.normal(5.0, 0.1, size=(30, 4))
        points = np.vstack([a, b])
        result = kmeans(points, 2, rng)
        assert result.k == 2
        labels_a = set(result.labels[:30])
        labels_b = set(result.labels[30:])
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_inertia_decreases_with_k(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(60, 3))
        inertias = [kmeans(points, k, np.random.default_rng(2)).inertia for k in (1, 2, 4, 8)]
        assert all(x >= y - 1e-9 for x, y in zip(inertias, inertias[1:]))

    def test_predict_assigns_nearest(self):
        rng = np.random.default_rng(3)
        points = np.array([[0.0], [0.1], [5.0], [5.1]])
        result = kmeans(points, 2, rng)
        pred = result.predict(np.array([[0.05], [4.9]]))
        assert pred[0] != pred[1]

    def test_cluster_sizes_sum(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(50, 2))
        result = kmeans(points, 5, rng)
        assert result.cluster_sizes().sum() == 50

    def test_identical_points(self):
        points = np.ones((10, 2))
        result = kmeans(points, 3, np.random.default_rng(5))
        assert result.inertia == pytest.approx(0.0)

    def test_validation(self):
        rng = np.random.default_rng(6)
        with pytest.raises(DataError):
            kmeans(np.ones((3, 2)), 4, rng)
        with pytest.raises(DataError):
            kmeans(np.ones(5), 2, rng)

    def test_daily_profile_matrix(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96 * 3)
        series = TimeSeries(axis, np.arange(96 * 3, dtype=float))
        matrix = daily_profile_matrix(series)
        assert matrix.shape == (3, 96)

    def test_typical_daily_profiles_separates_day_kinds(self):
        """Days with evening peaks vs morning peaks form two clusters."""
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96 * 8)
        values = np.zeros(96 * 8)
        for day in range(8):
            peak = 76 if day % 2 == 0 else 30  # 19:00 vs 07:30
            values[day * 96 + peak] = 5.0
        series = TimeSeries(axis, values)
        result = typical_daily_profiles(series, 2, np.random.default_rng(7))
        even_labels = set(result.labels[0::2])
        odd_labels = set(result.labels[1::2])
        assert len(even_labels) == 1 and len(odd_labels) == 1
        assert even_labels != odd_labels

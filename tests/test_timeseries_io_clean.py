"""Tests for meter-data IO and data-quality repair."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import DataError
from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis, axis_for_days
from repro.timeseries.clean import (
    assemble_regular,
    clip_outliers,
    fill_missing,
    find_gaps,
    validate_meter_series,
)
from repro.timeseries.io import (
    load_series_csv,
    load_series_json,
    save_series_csv,
    save_series_json,
    series_from_dict,
    series_to_dict,
)
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


class TestSeriesIO:
    def test_dict_roundtrip(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 10)
        series = TimeSeries(axis, np.linspace(0, 1, 10), "demo")
        restored = series_from_dict(series_to_dict(series))
        assert restored == series
        assert restored.name == "demo"

    def test_dict_missing_field(self):
        with pytest.raises(DataError):
            series_from_dict({"start": START.isoformat()})

    def test_json_file_roundtrip(self, tmp_path):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 8)
        series = TimeSeries(axis, np.arange(8.0), "j")
        path = tmp_path / "series.json"
        save_series_json(series, path)
        assert load_series_json(path) == series

    def test_csv_file_roundtrip(self, tmp_path):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 8)
        series = TimeSeries(axis, np.random.default_rng(0).uniform(0, 2, 8))
        path = tmp_path / "series.csv"
        save_series_csv(series, path)
        restored = load_series_csv(path)
        assert restored.allclose(series, atol=0)
        assert restored.axis.aligned_with(series.axis)

    def test_csv_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,kwh\n2012-03-05T00:00:00,1.0\n")
        with pytest.raises(DataError):
            load_series_csv(path)

    def test_csv_irregular_spacing(self, tmp_path):
        path = tmp_path / "irr.csv"
        path.write_text(
            "timestamp,value\n"
            "2012-03-05T00:00:00,1.0\n"
            "2012-03-05T00:15:00,1.0\n"
            "2012-03-05T00:45:00,1.0\n"
        )
        with pytest.raises(DataError):
            load_series_csv(path)

    def test_csv_too_short(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("timestamp,value\n2012-03-05T00:00:00,1.0\n")
        with pytest.raises(DataError):
            load_series_csv(path)

    def test_csv_bad_value(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text(
            "timestamp,value\n2012-03-05T00:00:00,abc\n2012-03-05T00:15:00,1\n"
        )
        with pytest.raises(DataError):
            load_series_csv(path)


class TestGaps:
    def test_find_gaps(self):
        res = FIFTEEN_MINUTES
        stamps = [START, START + res, START + 4 * res]
        gaps = find_gaps(stamps, res)
        assert gaps == [(START + 2 * res, START + 4 * res)]

    def test_no_gaps(self):
        res = FIFTEEN_MINUTES
        stamps = [START + i * res for i in range(5)]
        assert find_gaps(stamps, res) == []

    def test_unordered_raises(self):
        with pytest.raises(DataError):
            find_gaps([START, START], FIFTEEN_MINUTES)

    def test_off_grid_raises(self):
        with pytest.raises(DataError):
            find_gaps([START, START + timedelta(minutes=20)], FIFTEEN_MINUTES)

    def test_assemble_regular(self):
        res = FIFTEEN_MINUTES
        readings = [(START, 1.0), (START + 3 * res, 4.0)]
        series, missing = assemble_regular(readings, res)
        assert len(series) == 4
        assert list(missing) == [False, True, True, False]
        assert series.values[0] == 1.0 and series.values[3] == 4.0

    def test_assemble_empty_raises(self):
        with pytest.raises(DataError):
            assemble_regular([], FIFTEEN_MINUTES)


class TestFillMissing:
    def test_interpolate(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 5)
        series = TimeSeries(axis, [1.0, 0.0, 0.0, 0.0, 5.0])
        missing = np.array([False, True, True, True, False])
        filled = fill_missing(series, missing, method="interpolate")
        assert np.allclose(filled.values, [1, 2, 3, 4, 5])

    def test_daily_profile_fill(self):
        axis = axis_for_days(START, 3)
        values = np.tile(np.sin(np.linspace(0, 2 * np.pi, 96)) + 2.0, 3)
        missing = np.zeros(len(values), dtype=bool)
        missing[96 + 10] = True  # drop one interval on day 2
        original = values[96 + 10]
        damaged = values.copy()
        damaged[96 + 10] = 0.0
        filled = fill_missing(TimeSeries(axis, damaged), missing)
        # Donor days carry the same phase value.
        assert filled.values[96 + 10] == pytest.approx(original, rel=1e-6)

    def test_no_missing_copy(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 4)
        series = TimeSeries(axis, np.ones(4))
        filled = fill_missing(series, np.zeros(4, dtype=bool))
        assert filled == series

    def test_all_missing_raises(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 4)
        series = TimeSeries.zeros(axis)
        with pytest.raises(DataError):
            fill_missing(series, np.ones(4, dtype=bool))

    def test_unknown_method(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 4)
        series = TimeSeries.zeros(axis)
        with pytest.raises(DataError):
            fill_missing(series, np.array([True, False, False, False]), method="magic")

    def test_shape_mismatch(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 4)
        with pytest.raises(DataError):
            fill_missing(TimeSeries.zeros(axis), np.zeros(5, dtype=bool))


class TestOutliersAndValidation:
    def test_clip_outliers(self):
        axis = axis_for_days(START, 1)
        rng = np.random.default_rng(0)
        values = rng.uniform(0.2, 0.4, 96)
        values[50] = 50.0  # meter glitch
        repaired, clipped = clip_outliers(TimeSeries(axis, values))
        assert clipped == 1
        assert repaired.values[50] < 5.0

    def test_clip_flat_series_noop(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 8)
        series = TimeSeries.full(axis, 1.0)
        repaired, clipped = clip_outliers(series)
        assert clipped == 0
        assert repaired == series

    def test_clip_invalid_sigma(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 8)
        with pytest.raises(DataError):
            clip_outliers(TimeSeries.zeros(axis), max_sigma=0.0)

    def test_quality_report(self):
        axis = axis_for_days(START, 1)
        rng = np.random.default_rng(1)
        values = rng.uniform(0.2, 0.4, 96)
        values[10] = -0.5
        values[20] = 30.0
        missing = np.zeros(96, dtype=bool)
        missing[40:44] = True
        report = validate_meter_series(TimeSeries(axis, values), missing)
        assert report.intervals == 96
        assert report.negative == 1
        assert report.spikes >= 1
        assert report.missing == 4
        assert report.longest_gap == 4
        assert report.usable

    def test_unusable_when_gappy(self):
        axis = axis_for_days(START, 8)
        missing = np.zeros(axis.length, dtype=bool)
        missing[: 96 * 7] = True  # a week-long outage
        report = validate_meter_series(TimeSeries.zeros(axis), missing)
        assert not report.usable

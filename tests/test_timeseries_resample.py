"""Unit tests for :mod:`repro.timeseries.resample`."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import ResolutionError
from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis
from repro.timeseries.resample import (
    downsample_mean,
    downsample_sum,
    upsample_repeat,
    upsample_spread,
)
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


class TestDownsample:
    def test_sum_conserves_energy(self):
        axis = TimeAxis(START, ONE_MINUTE, 60)
        series = TimeSeries(axis, np.random.default_rng(0).uniform(0, 1, 60))
        coarse = downsample_sum(series, FIFTEEN_MINUTES)
        assert len(coarse) == 4
        assert coarse.total() == pytest.approx(series.total())

    def test_sum_values(self):
        axis = TimeAxis(START, ONE_MINUTE, 30)
        series = TimeSeries(axis, np.ones(30))
        coarse = downsample_sum(series, FIFTEEN_MINUTES)
        assert list(coarse.values) == [15.0, 15.0]

    def test_mean_values(self):
        axis = TimeAxis(START, ONE_MINUTE, 30)
        series = TimeSeries(axis, np.ones(30) * 3.0)
        coarse = downsample_mean(series, FIFTEEN_MINUTES)
        assert list(coarse.values) == [3.0, 3.0]

    def test_non_integer_ratio_rejected(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 8)
        series = TimeSeries.zeros(axis)
        with pytest.raises(ResolutionError):
            downsample_sum(series, timedelta(minutes=20))

    def test_non_divisible_length_rejected(self):
        axis = TimeAxis(START, ONE_MINUTE, 25)
        series = TimeSeries.zeros(axis)
        with pytest.raises(ResolutionError):
            downsample_sum(series, FIFTEEN_MINUTES)


class TestUpsample:
    def test_spread_conserves_energy(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 4)
        series = TimeSeries(axis, [15.0, 30.0, 0.0, 7.5])
        fine = upsample_spread(series, ONE_MINUTE)
        assert len(fine) == 60
        assert fine.total() == pytest.approx(series.total())
        assert fine.values[0] == pytest.approx(1.0)

    def test_repeat_preserves_level(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 2)
        series = TimeSeries(axis, [2.0, 4.0])
        fine = upsample_repeat(series, ONE_MINUTE)
        assert fine.values[0] == 2.0
        assert fine.values[29] == 4.0

    def test_roundtrip_identity(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 8)
        series = TimeSeries(axis, np.random.default_rng(1).uniform(0, 2, 8))
        roundtrip = downsample_sum(upsample_spread(series, ONE_MINUTE), FIFTEEN_MINUTES)
        assert roundtrip.allclose(series)

    def test_coarser_target_rejected(self):
        axis = TimeAxis(START, ONE_MINUTE, 60)
        with pytest.raises(ResolutionError):
            upsample_spread(TimeSeries.zeros(axis), FIFTEEN_MINUTES)

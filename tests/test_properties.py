"""Property-based tests (hypothesis) on core invariants.

These target the data structures and algorithms whose correctness everything
else leans on: the time-series algebra, the flex-offer model, schedule
redistribution, peak detection, aggregation round-trips, and the extraction
energy-conservation contract.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.aggregation.aggregate import aggregate_group, disaggregate_schedule
from repro.extraction.basic import BasicExtractor
from repro.extraction.params import FlexOfferParams
from repro.extraction.peaks import (
    PeakBasedExtractor,
    detect_peaks,
    filter_peaks,
    selection_probabilities,
)
from repro.flexoffer.io import flexoffer_from_dict, flexoffer_to_dict
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.flexoffer.schedule import default_schedule
from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis
from repro.timeseries.resample import downsample_sum, upsample_spread
from repro.timeseries.series import TimeSeries
from repro.timeseries.stats import sparseness

START = datetime(2012, 3, 5)

finite_values = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def value_arrays(min_size: int = 1, max_size: int = 96):
    return arrays(
        dtype=np.float64,
        shape=st.integers(min_size, max_size),
        elements=finite_values,
    )


class TestTimeSeriesProperties:
    @given(values=value_arrays())
    def test_total_equals_sum(self, values):
        axis = TimeAxis(START, FIFTEEN_MINUTES, len(values))
        assert TimeSeries(axis, values).total() == pytest.approx(values.sum())

    @given(values=value_arrays(min_size=4, max_size=64))
    def test_slice_totals_partition(self, values):
        axis = TimeAxis(START, FIFTEEN_MINUTES, len(values))
        series = TimeSeries(axis, values)
        mid = len(values) // 2
        left = series.slice(0, mid)
        right = series.slice(mid, len(values) - mid)
        assert left.total() + right.total() == pytest.approx(series.total())

    @given(values=value_arrays(min_size=1, max_size=32))
    def test_resample_roundtrip_conserves_energy(self, values):
        axis = TimeAxis(START, FIFTEEN_MINUTES, len(values))
        series = TimeSeries(axis, values)
        fine = upsample_spread(series, ONE_MINUTE)
        back = downsample_sum(fine, FIFTEEN_MINUTES)
        assert back.allclose(series, atol=1e-9)
        assert fine.total() == pytest.approx(series.total())

    @given(values=value_arrays(min_size=2))
    def test_sparseness_in_unit_interval(self, values):
        axis = TimeAxis(START, FIFTEEN_MINUTES, len(values))
        assert 0.0 <= sparseness(TimeSeries(axis, values)) <= 1.0 + 1e-9

    @given(values=value_arrays(min_size=2), scalar=st.floats(-10, 10, allow_nan=False))
    def test_linearity_of_total(self, values, scalar):
        axis = TimeAxis(START, FIFTEEN_MINUTES, len(values))
        series = TimeSeries(axis, values)
        assert (series * scalar).total() == pytest.approx(scalar * series.total(), abs=1e-6)


slice_strategy = st.builds(
    ProfileSlice,
    energy_min=st.floats(0.0, 5.0, allow_nan=False),
    energy_max=st.floats(5.0, 10.0, allow_nan=False),
    duration=st.integers(1, 4),
)


class TestFlexOfferProperties:
    @given(
        slices=st.lists(slice_strategy, min_size=1, max_size=6),
        flex_intervals=st.integers(0, 48),
    )
    def test_derived_attribute_consistency(self, slices, flex_intervals):
        offer = FlexOffer(
            earliest_start=START,
            latest_start=START + FIFTEEN_MINUTES * flex_intervals,
            slices=tuple(slices),
        )
        assert offer.latest_end == offer.latest_start + offer.duration
        assert offer.time_flexibility_intervals == flex_intervals
        assert offer.profile_energy_min <= offer.profile_energy_max
        assert len(offer.slice_expansion()) == offer.profile_intervals
        assert len(offer.feasible_starts()) == flex_intervals + 1

    @given(slices=st.lists(slice_strategy, min_size=1, max_size=6))
    def test_io_roundtrip(self, slices):
        offer = FlexOffer(
            earliest_start=START,
            latest_start=START + timedelta(hours=2),
            slices=tuple(slices),
        )
        assert flexoffer_from_dict(flexoffer_to_dict(offer)) == offer

    @given(
        slices=st.lists(slice_strategy, min_size=1, max_size=6),
        level=st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_default_schedule_always_feasible(self, slices, level):
        offer = FlexOffer(
            earliest_start=START,
            latest_start=START + timedelta(hours=1),
            slices=tuple(slices),
        )
        sched = default_schedule(offer, level=level)
        tmin, tmax = offer.effective_total_bounds()
        assert tmin - 1e-9 <= sched.total_energy <= tmax + 1e-9

    @given(
        slices=st.lists(slice_strategy, min_size=1, max_size=4),
        factor=st.floats(0.0, 3.0, allow_nan=False),
    )
    def test_scaling_scales_bounds(self, slices, factor):
        offer = FlexOffer(
            earliest_start=START,
            latest_start=START + timedelta(hours=1),
            slices=tuple(slices),
        )
        scaled = offer.scaled(factor)
        assert scaled.profile_energy_min == pytest.approx(offer.profile_energy_min * factor)
        assert scaled.profile_energy_max == pytest.approx(offer.profile_energy_max * factor)


class TestPeakProperties:
    @given(values=value_arrays(min_size=4, max_size=96))
    def test_peaks_partition_above_threshold_mass(self, values):
        peaks = detect_peaks(values)
        mean = values.mean()
        epsilon = 1e-9 * max(1.0, abs(mean))
        above = values > mean + epsilon
        covered = np.zeros(len(values), dtype=bool)
        for peak in peaks:
            covered[peak.first : peak.first + peak.length] = True
            # Every interval of every peak is strictly above the mean.
            assert (values[peak.first : peak.first + peak.length] > mean).all()
        assert (covered == above).all()

    @given(values=value_arrays(min_size=4, max_size=96))
    def test_peak_sizes_sum_to_above_mass(self, values):
        peaks = detect_peaks(values)
        mean = values.mean()
        epsilon = 1e-9 * max(1.0, abs(mean))
        above_mass = values[values > mean + epsilon].sum()
        assert sum(p.size for p in peaks) == pytest.approx(above_mass)

    @given(values=value_arrays(min_size=4, max_size=96), share=st.floats(0.001, 0.2))
    def test_filter_monotone_in_threshold(self, values, share):
        peaks = detect_peaks(values)
        low = filter_peaks(peaks, share * values.sum())
        high = filter_peaks(peaks, 2 * share * values.sum() + 1e-9)
        assert set((p.first, p.length) for p in high) <= set(
            (p.first, p.length) for p in low
        )

    @given(values=value_arrays(min_size=4, max_size=96))
    def test_selection_probabilities_normalised(self, values):
        peaks = detect_peaks(values)
        if peaks:
            probs = selection_probabilities(peaks)
            assert probs.sum() == pytest.approx(1.0)
            assert (probs >= 0).all()


class TestExtractionConservationProperty:
    @settings(deadline=None, max_examples=25)
    @given(
        values=arrays(
            dtype=np.float64,
            shape=96,
            elements=st.floats(0.01, 2.0, allow_nan=False),
        ),
        share=st.floats(0.001, 0.065),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_basic_extractor_conserves_energy(self, values, share, seed):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        series = TimeSeries(axis, values)
        extractor = BasicExtractor(params=FlexOfferParams(flexible_share=share))
        result = extractor.extract(series, np.random.default_rng(seed))
        assert result.energy_conservation_error() < 1e-9
        assert result.modified.is_nonnegative()
        assert result.extracted_share <= share + 1e-9

    @settings(deadline=None, max_examples=25)
    @given(
        values=arrays(
            dtype=np.float64,
            shape=96,
            elements=st.floats(0.01, 2.0, allow_nan=False),
        ),
        share=st.floats(0.001, 0.065),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_peak_extractor_conserves_energy(self, values, share, seed):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        series = TimeSeries(axis, values)
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=share))
        result = extractor.extract(series, np.random.default_rng(seed))
        assert result.energy_conservation_error() < 1e-9
        assert result.modified.is_nonnegative()
        assert len(result.offers) <= 1  # one offer per day at most


class TestAggregationProperties:
    @settings(deadline=None, max_examples=50)
    @given(
        energies=st.lists(st.floats(0.1, 5.0, allow_nan=False), min_size=1, max_size=8),
        offsets=st.lists(st.integers(0, 8), min_size=1, max_size=8),
        level=st.floats(0.0, 1.0, allow_nan=False),
        start_shift=st.integers(0, 4),
    )
    def test_disaggregation_roundtrip(self, energies, offsets, level, start_shift):
        n = min(len(energies), len(offsets))
        members = []
        for e, off in zip(energies[:n], offsets[:n]):
            est = START + FIFTEEN_MINUTES * off
            members.append(
                FlexOffer(
                    earliest_start=est,
                    latest_start=est + timedelta(hours=2),
                    slices=(ProfileSlice(0.5 * e, 1.5 * e), ProfileSlice(0.2 * e, 0.4 * e)),
                )
            )
        agg = aggregate_group(members)
        start = agg.offer.earliest_start + FIFTEEN_MINUTES * min(
            start_shift, agg.offer.time_flexibility_intervals
        )
        schedule = default_schedule(agg.offer, start=start, level=level)
        parts = disaggregate_schedule(agg, schedule)
        # Energy conservation.
        assert sum(p.total_energy for p in parts) == pytest.approx(
            schedule.total_energy, abs=1e-6
        )
        # Every member keeps the common shift.
        delta = schedule.start - agg.offer.earliest_start
        for part, member in zip(parts, agg.members):
            assert part.start == member.earliest_start + delta

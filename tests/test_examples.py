"""Smoke tests: every shipped example must run end to end.

Examples are the adoption surface; a broken example is a broken repo.  Each
is imported from its file and exercised with reduced parameters where the
module exposes them (simulations come from the session-cached scenarios, so
this stays fast).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "[basic]" in out and "[peak-based]" in out
        assert "conservation error" in out

    def test_paper_figures(self, capsys):
        module = load_example("paper_figures")
        module.show_figure1()
        module.show_figure4()
        module.show_figure5()
        out = capsys.readouterr().out
        assert "50 kWh" in out          # Figure 1
        assert "39.02" in out            # Figure 5 total
        assert "1.951" in out            # filter threshold
        assert "29%" in out and "71%" in out

    def test_appliance_disaggregation(self, capsys):
        load_example("appliance_disaggregation").main()
        out = capsys.readouterr().out
        assert "shortlist" in out
        assert "flex-offers" in out

    def test_multitariff_study(self, capsys):
        load_example("multitariff_study").main()
        out = capsys.readouterr().out
        assert "truly shifted energy" in out
        assert "conservation error" in out

    def test_mirabel_pipeline_small(self, capsys):
        load_example("mirabel_pipeline").main(6)
        out = capsys.readouterr().out
        assert "squared imbalance" in out
        assert "household schedules" in out

    def test_online_generation(self, capsys):
        load_example("online_generation").main()
        out = capsys.readouterr().out
        assert "day-ahead mode" in out
        assert "streaming mode" in out

    def test_zoned_market(self, capsys):
        load_example("zoned_market").main()
        out = capsys.readouterr().out
        assert "3 market zones" in out
        assert "zone   north" in out
        assert "workers=2 identical to sequential: True" in out

"""Tests for flex-offer grouping, aggregation and disaggregation (paper [4])."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.aggregation.aggregate import (
    aggregate_all,
    aggregate_group,
    disaggregate_schedule,
)
from repro.aggregation.grouping import GroupingParams, group_offers
from repro.errors import AggregationError
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.flexoffer.schedule import ScheduledFlexOffer, default_schedule
from repro.scheduling.greedy import greedy_schedule
from repro.timeseries.axis import FIFTEEN_MINUTES, axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5, 18, 0)


def offer(start_offset_h: float = 0.0, flex_h: float = 2.0, e: float = 1.0) -> FlexOffer:
    est = START + timedelta(hours=start_offset_h)
    return FlexOffer(
        earliest_start=est,
        latest_start=est + timedelta(hours=flex_h),
        slices=(ProfileSlice(0.8 * e, 1.2 * e), ProfileSlice(0.4 * e, 0.6 * e)),
    )


class TestGrouping:
    def test_similar_offers_share_group(self):
        offers = [offer(0.0), offer(0.25), offer(0.5)]
        groups = group_offers(offers, GroupingParams(start_tolerance=timedelta(hours=2)))
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_distant_starts_split(self):
        offers = [offer(0.0), offer(10.0)]
        groups = group_offers(offers, GroupingParams(start_tolerance=timedelta(hours=2)))
        assert len(groups) == 2

    def test_different_flexibility_split(self):
        offers = [offer(0.0, flex_h=1.0), offer(0.0, flex_h=20.0)]
        groups = group_offers(offers, GroupingParams(flexibility_tolerance=timedelta(hours=4)))
        assert len(groups) == 2

    def test_max_group_size(self):
        offers = [offer(0.0) for _ in range(10)]
        groups = group_offers(offers, GroupingParams(max_group_size=4))
        assert [len(g) for g in groups] == [4, 4, 2]

    def test_empty_input(self):
        assert group_offers([]) == []

    def test_validation(self):
        with pytest.raises(AggregationError):
            GroupingParams(start_tolerance=timedelta(0))
        with pytest.raises(AggregationError):
            GroupingParams(max_group_size=0)


class TestAggregation:
    def test_profile_sums(self):
        group = [offer(0.0, e=1.0), offer(0.0, e=2.0)]
        agg = aggregate_group(group)
        assert agg.size == 2
        assert agg.offer.profile_energy_min == pytest.approx(1.2 * 3.0)
        assert agg.offer.profile_energy_max == pytest.approx(1.8 * 3.0)

    def test_flexibility_is_member_minimum(self):
        group = [offer(0.0, flex_h=2.0), offer(0.0, flex_h=5.0)]
        agg = aggregate_group(group)
        assert agg.offer.time_flexibility == timedelta(hours=2)

    def test_offset_members_extend_profile(self):
        group = [offer(0.0), offer(0.5)]  # second starts 2 intervals later
        agg = aggregate_group(group)
        # Member profile is 2 intervals; offset 2 -> total 4 intervals.
        assert agg.offer.profile_intervals == 4
        assert agg.member_offsets == (0, 2)

    def test_empty_group_rejected(self):
        with pytest.raises(AggregationError):
            aggregate_group([])

    def test_mixed_resolution_rejected(self):
        from repro.timeseries.axis import ONE_HOUR
        a = offer(0.0)
        b = FlexOffer(
            earliest_start=START,
            latest_start=START + timedelta(hours=2),
            slices=(ProfileSlice(0.5, 1.0),),
            resolution=ONE_HOUR,
        )
        with pytest.raises(AggregationError):
            aggregate_group([a, b])

    def test_misaligned_start_rejected(self):
        a = offer(0.0)
        b = a.shifted(timedelta(minutes=7))
        with pytest.raises(AggregationError):
            aggregate_group([a, b])

    def test_aggregate_all(self):
        offers = [offer(0.0), offer(0.25), offer(12.0)]
        groups = group_offers(offers)
        aggs = aggregate_all(groups)
        assert sum(a.size for a in aggs) == 3


class TestDisaggregation:
    def test_roundtrip_energy_exact(self):
        group = [offer(0.0, e=1.0), offer(0.25, e=2.0), offer(0.5, e=0.5)]
        agg = aggregate_group(group)
        schedule = default_schedule(agg.offer, start=agg.offer.earliest_start)
        parts = disaggregate_schedule(agg, schedule)
        assert len(parts) == 3
        assert sum(p.total_energy for p in parts) == pytest.approx(schedule.total_energy)

    def test_members_feasible(self):
        group = [offer(0.0, e=1.0), offer(0.25, e=2.0)]
        agg = aggregate_group(group)
        # Shift by the full aggregate flexibility.
        start = agg.offer.latest_start
        schedule = default_schedule(agg.offer, start=start, level=1.0)
        parts = disaggregate_schedule(agg, schedule)
        for part, member in zip(parts, agg.members):
            # Construction of ScheduledFlexOffer already validates bounds;
            # double-check start-shift semantics here.
            delta = schedule.start - agg.offer.earliest_start
            assert part.start == member.earliest_start + delta

    def test_interval_alignment_of_demand(self):
        """Disaggregated members reproduce the aggregate's demand per interval."""
        group = [offer(0.0, e=1.0), offer(0.5, e=2.0)]
        agg = aggregate_group(group)
        axis = axis_for_days(START.replace(hour=0), 2)
        schedule = default_schedule(agg.offer, start=agg.offer.earliest_start)
        parts = disaggregate_schedule(agg, schedule)
        from repro.flexoffer.schedule import schedules_to_series

        agg_series = schedule.to_series(axis)
        member_series = schedules_to_series(parts, axis)
        assert member_series.allclose(agg_series, atol=1e-9)

    def test_wrong_schedule_rejected(self):
        group = [offer(0.0)]
        agg = aggregate_group(group)
        other = default_schedule(offer(1.0))
        with pytest.raises(AggregationError):
            disaggregate_schedule(agg, other)

    def test_scheduled_aggregate_roundtrip(self):
        """End to end: group -> aggregate -> greedy schedule -> disaggregate."""
        offers = [offer(0.0, e=1.0), offer(0.25, e=1.5), offer(0.25, e=0.7)]
        agg = aggregate_group(offers)
        axis = axis_for_days(START.replace(hour=0), 2)
        rng = np.random.default_rng(0)
        target = TimeSeries(axis, rng.uniform(0.0, 3.0, axis.length))
        result = greedy_schedule([agg.offer], target)
        assert len(result.schedules) == 1
        parts = disaggregate_schedule(agg, result.schedules[0])
        assert sum(p.total_energy for p in parts) == pytest.approx(
            result.schedules[0].total_energy
        )

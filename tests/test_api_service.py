"""`FlexibilityService`: spec-driven end-to-end runs and the report wire format.

Covers the acceptance contract of the unified API: a fleet spec executes
end to end for 4+ registry-resolved approaches, and both
:class:`~repro.api.spec.RunSpec` and :class:`~repro.api.service.RunReport`
round-trip losslessly through JSON.  The wire format itself is pinned by a
golden file (``tests/data/run_report_golden.json``); regenerate it by
re-running the construction in :func:`golden_report` and dumping
``report.to_dict()`` if the format version is deliberately bumped.
"""

from __future__ import annotations

import json
from dataclasses import replace
from datetime import datetime
from pathlib import Path

import pytest

from repro.aggregation.aggregate import aggregate_group
from repro.api import (
    ExtractorSpec,
    FlexibilityService,
    PipelineSpec,
    RunReport,
    RunSpec,
    ScenarioSpec,
)
from repro.api.service import ExtractorRunReport
from repro.errors import DataError, RegistryError
from repro.flexoffer.model import figure1_flexoffer

GOLDEN_PATH = Path(__file__).parent / "data" / "run_report_golden.json"

#: The acceptance-criteria fleet: five approaches, all resolved by name.
FLEET_SPEC = RunSpec(
    kind="fleet",
    name="service-test",
    scenario=ScenarioSpec(households=2, days=2, seed=7),
    extractors=(
        ExtractorSpec("basic", {"flexible_share": 0.05}),
        ExtractorSpec("peak-based", {"flexible_share": 0.05}),
        ExtractorSpec("random-baseline"),
        ExtractorSpec("frequency-based"),
        ExtractorSpec("schedule-based"),
    ),
    pipeline=PipelineSpec(chunk_size=4),
)


@pytest.fixture(scope="module")
def fleet_report() -> RunReport:
    return FlexibilityService().run(FLEET_SPEC)


def golden_report() -> RunReport:
    """The handcrafted report the golden file pins (fully deterministic)."""
    offer = replace(figure1_flexoffer(datetime(2012, 3, 5)), offer_id="golden-ev-1")
    aggregate = aggregate_group([offer])
    aggregate = replace(
        aggregate, offer=replace(aggregate.offer, offer_id="golden-agg-1")
    )
    spec = RunSpec(
        kind="fleet",
        name="golden",
        scenario=ScenarioSpec(households=1, days=1, seed=0),
        extractors=(ExtractorSpec("peak-based", {"flexible_share": 0.05}),),
        pipeline=PipelineSpec(),
    )
    return RunReport(
        spec=spec,
        results=(
            ExtractorRunReport(
                extractor="peak-based",
                households=1,
                offers=(offer,),
                aggregates=(aggregate,),
                stage_seconds={
                    "prepare": 0.001,
                    "extract": 0.25,
                    "group": 0.002,
                    "aggregate": 0.004,
                },
                summary={"offers": 1.0, "aggregates": 1.0, "extracted_kwh": 50.0},
            ),
        ),
        extras={
            "note": "golden wire-format fixture; regenerate via "
            "tests/test_api_service.py docstring"
        },
    )


class TestFleetRuns:
    def test_at_least_four_approaches_produce_offers(self, fleet_report):
        producing = [r.extractor for r in fleet_report.results if r.offers]
        assert len(producing) >= 4
        assert {"basic", "peak-based", "random-baseline", "frequency-based"} <= set(
            producing
        )

    def test_every_result_carries_aggregates_and_timings(self, fleet_report):
        for result in fleet_report.results:
            assert result.households == 2
            if result.offers:
                assert result.aggregates
            assert result.stage_seconds.get("extract", 0.0) >= 0.0
            assert result.summary["offers"] == float(len(result.offers))

    def test_report_result_order_follows_spec(self, fleet_report):
        assert [r.extractor for r in fleet_report.results] == [
            e.name for e in FLEET_SPEC.extractors
        ]

    def test_get_by_name(self, fleet_report):
        assert fleet_report.get("peak-based").extractor == "peak-based"
        with pytest.raises(KeyError):
            fleet_report.get("multi-tariff")

    def test_fleet_matches_direct_pipeline_run(self, fleet_report):
        """The service is a façade: same spec → same offers as FleetPipeline."""
        from repro.pipeline.fleet import FleetPipeline, offers_equivalent
        from repro.simulation.dataset import generate_fleet

        scenario = FLEET_SPEC.scenario
        fleet = generate_fleet(
            scenario.households, scenario.start, scenario.days, seed=scenario.seed
        )
        direct = FleetPipeline(
            extractor=FLEET_SPEC.extractors[1].create(),
            grouping=FLEET_SPEC.pipeline.grouping_params(),
            chunk_size=FLEET_SPEC.pipeline.chunk_size,
            seed=scenario.seed,
        ).run(fleet)
        assert offers_equivalent(
            list(fleet_report.get("peak-based").offers), direct.offers
        )

    def test_unknown_extractor_fails_before_simulation_cost_is_wasted(self):
        spec = FLEET_SPEC.with_overrides(extractors=(ExtractorSpec("nope"),))
        with pytest.raises(RegistryError, match="unknown extractor 'nope'"):
            FlexibilityService().run(spec)


class TestReportRoundTrip:
    def test_fleet_report_round_trips_losslessly(self, fleet_report):
        assert RunReport.from_dict(fleet_report.to_dict()) == fleet_report
        assert RunReport.from_json(fleet_report.to_json()) == fleet_report

    def test_report_file_round_trip(self, fleet_report, tmp_path):
        path = tmp_path / "report.json"
        fleet_report.save(path)
        assert RunReport.load(path) == fleet_report

    def test_report_dict_is_json_native(self, fleet_report):
        encoded = fleet_report.to_dict()
        assert json.loads(json.dumps(encoded)) == encoded


class TestGoldenWireFormat:
    def test_encoding_matches_golden_file(self):
        assert golden_report().to_dict() == json.loads(GOLDEN_PATH.read_text())

    def test_golden_file_decodes_to_equal_report(self):
        assert RunReport.from_json(GOLDEN_PATH.read_text()) == golden_report()

    def test_aggregates_survive_with_members_and_offsets(self):
        decoded = RunReport.from_json(GOLDEN_PATH.read_text())
        aggregate = decoded.results[0].aggregates[0]
        assert aggregate.size == 1
        assert aggregate.member_offsets == (0,)
        assert aggregate.members[0].offer_id == "golden-ev-1"

    def test_unsupported_report_version_rejected(self):
        data = json.loads(GOLDEN_PATH.read_text())
        data["version"] = 99
        with pytest.raises(DataError, match="unsupported run-report format version"):
            RunReport.from_dict(data)


class TestScheduleStageReports:
    @pytest.fixture(scope="class")
    def schedule_report(self) -> RunReport:
        from repro.api import ScheduleSpec

        spec = RunSpec(
            kind="fleet",
            name="schedule-test",
            scenario=ScenarioSpec(households=2, days=2, seed=7),
            extractors=(ExtractorSpec("peak-based", {"flexible_share": 0.05}),),
            pipeline=PipelineSpec(
                chunk_size=4,
                schedule=ScheduleSpec(target_kwh=25.0, improve_iterations=40),
            ),
        )
        return FlexibilityService().run(spec)

    def test_schedule_result_attached_and_summarised(self, schedule_report):
        (result,) = schedule_report.results
        assert result.schedule is not None
        assert "schedule" in result.stage_seconds
        assert result.summary["schedule_placed"] + result.summary[
            "schedule_unplaced"
        ] == float(len(result.aggregates))
        assert result.summary["schedule_cost"] == pytest.approx(
            result.schedule.cost
        )

    def test_schedule_report_round_trips_losslessly(self, schedule_report):
        assert RunReport.from_dict(schedule_report.to_dict()) == schedule_report
        assert RunReport.from_json(schedule_report.to_json()) == schedule_report
        encoded = schedule_report.to_dict()
        assert json.loads(json.dumps(encoded)) == encoded

    def test_schedule_target_is_deterministic(self, schedule_report):
        (result,) = schedule_report.results
        assert result.schedule.target.total() == pytest.approx(25.0)
        rerun = FlexibilityService().run(schedule_report.spec)
        # Identical modulo wall-clock timings: offers, placements, cost.
        assert rerun.results[0].offers == result.offers
        assert rerun.results[0].schedule == result.schedule
        assert rerun.results[0].summary == result.summary

    def test_flat_target_kind(self):
        from repro.api import ScheduleSpec

        spec = RunSpec(
            kind="fleet",
            scenario=ScenarioSpec(households=1, days=1, seed=3),
            extractors=(ExtractorSpec("random-baseline"),),
            pipeline=PipelineSpec(
                schedule=ScheduleSpec(target="flat", target_kwh=10.0)
            ),
        )
        report = FlexibilityService().run(spec)
        target = report.results[0].schedule.target
        assert target.total() == pytest.approx(10.0)
        assert float(target.values.min()) == pytest.approx(float(target.values.max()))


class TestOtherKinds:
    def test_compare_kind_produces_realism_rows(self):
        spec = RunSpec(
            kind="compare",
            scenario=ScenarioSpec(households=2, days=2, seed=3),
            extractors=(ExtractorSpec("basic"), ExtractorSpec("random-baseline")),
        )
        report = FlexibilityService().run(spec)
        assert [r.extractor for r in report.results] == ["basic", "random-baseline"]
        for result in report.results:
            assert not result.offers  # compare reports scores, not offers
            assert "extracted_kwh" in result.summary or result.summary
        assert RunReport.from_json(report.to_json()) == report

    def test_bench_kind_embeds_the_benchmark_report(self):
        spec = RunSpec(
            kind="bench",
            scenario=ScenarioSpec(households=2, days=1, seed=13),
            extractors=(ExtractorSpec("frequency-based"),),
            pipeline=PipelineSpec(chunk_size=2),
        )
        report = FlexibilityService().run(spec)
        bench = report.extras["bench"]
        assert bench["equivalence"]["batched_equals_sequential"] is True
        assert report.results[0].summary["speedup"] == float(bench["speedup"])
        assert RunReport.from_json(report.to_json()) == report

    def test_bench_kind_rejects_extractors_it_would_not_run(self):
        from repro.errors import SpecError

        spec = RunSpec(
            kind="bench",
            scenario=ScenarioSpec(households=2, days=1),
            extractors=(ExtractorSpec("peak-based"),),
        )
        with pytest.raises(SpecError, match="pinned frequency-based benchmark"):
            FlexibilityService().run(spec)
        with_params = spec.with_overrides(
            extractors=(ExtractorSpec("frequency-based", {"min_detections": 3}),)
        )
        with pytest.raises(SpecError, match="parameterless"):
            FlexibilityService().run(with_params)


class TestGridValidation:
    def test_extract_rejects_wrong_grid_before_running(self, fleet):
        metered = fleet.traces[0].metered()
        with pytest.raises(RegistryError, match="requires input on the 1-minute grid"):
            FlexibilityService().extract("frequency-based", metered)

    def test_extract_runs_registered_approach(self, fleet):
        result = FlexibilityService().extract(
            "peak-based", fleet.traces[0].metered(), seed=1, flexible_share=0.05
        )
        assert result.offers
        assert result.energy_conservation_error() < 1e-6

"""Property tests: quantile forecast fans stay well-formed on any input.

Robust scheduling trusts three structural facts about
:class:`repro.forecasting.QuantileForecast`: the curves are monotone in
level at every interval, the construction is a pure function of its
inputs (bitwise identical fans on repeated calls), and the wire encoding
round-trips exactly.  These hypothesis properties pin all three over
arbitrary series, plus the analytic anchor that exactly sign-symmetric
residuals put the median curve on the point forecast itself.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DataError
from repro.forecasting import (
    DEFAULT_LEVELS,
    QuantileForecast,
    quantile_forecast,
    quantile_forecast_from_residuals,
    residual_blocks,
    seasonal_naive_quantiles,
)
from repro.forecasting.models import drift, seasonal_naive
from repro.timeseries.axis import axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)

energy_values = st.floats(
    min_value=-20.0, max_value=50.0, allow_nan=False, allow_infinity=False
)

#: Strictly increasing level tuples drawn from a plausible grid.
level_tuples = (
    st.lists(
        st.sampled_from((0.05, 0.1, 0.2, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 0.95)),
        min_size=1,
        max_size=5,
        unique=True,
    )
    .map(sorted)
    .map(tuple)
)


def series_of(values: np.ndarray) -> TimeSeries:
    axis = axis_for_days(START, max(1, (len(values) + 95) // 96)).sub_axis(
        0, len(values)
    )
    return TimeSeries(axis, values, "load")


class TestFanShape:
    @settings(deadline=None, max_examples=40)
    @given(data=st.data(), levels=level_tuples, model=st.sampled_from(
        (seasonal_naive, drift)
    ))
    def test_curves_monotone_in_level(self, data, levels, model):
        values = data.draw(arrays(np.float64, 96 * 4, elements=energy_values))
        forecast = quantile_forecast(
            series_of(values), horizon=96, model=model, levels=levels
        )
        fan = forecast.fan()
        assert fan.shape == (len(levels), 96)
        assert np.all(np.diff(fan, axis=0) >= 0.0)
        for curve in forecast.curves:
            assert curve.axis == forecast.point.axis

    @settings(deadline=None, max_examples=40)
    @given(data=st.data(), levels=level_tuples)
    def test_fan_from_residuals_monotone(self, data, levels):
        point = series_of(
            data.draw(arrays(np.float64, 24, elements=energy_values))
        )
        residuals = data.draw(
            arrays(np.float64, (5, 24), elements=energy_values)
        )
        forecast = quantile_forecast_from_residuals(point, residuals, levels)
        assert np.all(np.diff(forecast.fan(), axis=0) >= 0.0)

    def test_non_monotone_fan_rejected_at_construction(self):
        point = series_of(np.zeros(4))
        lo = TimeSeries(point.axis, np.ones(4), "hi-as-lo")
        hi = TimeSeries(point.axis, np.zeros(4), "lo-as-hi")
        with pytest.raises(DataError):
            QuantileForecast(point=point, levels=(0.1, 0.9), curves=(lo, hi))
        with pytest.raises(DataError):
            QuantileForecast(point=point, levels=(0.9, 0.1), curves=(hi, lo))


class TestMedianAnchor:
    @settings(deadline=None, max_examples=40)
    @given(data=st.data())
    def test_median_equals_point_for_symmetric_residuals(self, data):
        """Exactly sign-symmetric residual rows pin q0.5 to the point curve."""
        point = series_of(
            data.draw(arrays(np.float64, 12, elements=energy_values))
        )
        half = data.draw(
            arrays(
                np.float64,
                (4, 12),
                elements=st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            )
        )
        residuals = np.concatenate([half, -half])
        forecast = quantile_forecast_from_residuals(
            point, residuals, DEFAULT_LEVELS
        )
        np.testing.assert_allclose(
            forecast.curve(0.5).values, point.values, atol=1e-12
        )


class TestPurity:
    @settings(deadline=None, max_examples=25)
    @given(data=st.data())
    def test_fan_is_bitwise_deterministic(self, data):
        values = data.draw(arrays(np.float64, 96 * 3, elements=energy_values))
        first = seasonal_naive_quantiles(series_of(values), horizon=48)
        second = seasonal_naive_quantiles(series_of(values), horizon=48)
        assert first.levels == second.levels
        assert np.array_equal(first.point.values, second.point.values)
        assert np.array_equal(first.fan(), second.fan())

    @settings(deadline=None, max_examples=25)
    @given(data=st.data())
    def test_residual_blocks_pure(self, data):
        values = data.draw(arrays(np.float64, 96 * 3, elements=energy_values))
        series = series_of(values)
        first = residual_blocks(series, drift, horizon=24)
        second = residual_blocks(series, drift, horizon=24)
        assert np.array_equal(first, second)


class TestWireRoundTrip:
    @settings(deadline=None, max_examples=30)
    @given(data=st.data(), levels=level_tuples)
    def test_round_trip_is_exact(self, data, levels):
        values = data.draw(arrays(np.float64, 96 * 3, elements=energy_values))
        forecast = quantile_forecast(
            series_of(values), horizon=24, model=drift, levels=levels
        )
        back = QuantileForecast.from_dict(forecast.to_dict())
        assert back.levels == forecast.levels
        assert back.point.axis == forecast.point.axis
        assert back.point.name == forecast.point.name
        assert np.array_equal(back.point.values, forecast.point.values)
        assert np.array_equal(back.fan(), forecast.fan())
        for ours, theirs in zip(forecast.curves, back.curves):
            assert theirs.name == ours.name

    def test_missing_field_raises_data_error(self):
        forecast = drift_fixture()
        encoded = forecast.to_dict()
        del encoded["levels"]
        with pytest.raises(DataError):
            QuantileForecast.from_dict(encoded)


def drift_fixture() -> QuantileForecast:
    values = 2.0 + np.sin(2 * np.pi * np.arange(96 * 3) / 96)
    return quantile_forecast(series_of(values), horizon=24, model=drift)


class TestLevelValidation:
    def test_levels_must_be_strictly_increasing(self):
        series = series_of(np.ones(96 * 3))
        with pytest.raises(DataError):
            quantile_forecast(series, horizon=24, levels=(0.5, 0.5))
        with pytest.raises(DataError):
            quantile_forecast(series, horizon=24, levels=(0.9, 0.1))

    def test_levels_must_be_in_open_unit_interval(self):
        series = series_of(np.ones(96 * 3))
        with pytest.raises(DataError):
            quantile_forecast(series, horizon=24, levels=(0.0, 0.5))
        with pytest.raises(DataError):
            quantile_forecast(series, horizon=24, levels=(0.5, 1.0))

"""Version-N-1 wire compatibility: pre-market payloads keep loading.

The market PR added an optional ``clearing`` section to the zoned schedule
encoding and ``market_*`` summary keys to run reports.  Both are strictly
additive: the ``clearing`` key is omitted when a run never cleared, so
every encoder/decoder pair must keep round-tripping payloads written
*before* the market subsystem existed.  The fixtures under
``tests/data/golden/compat/`` are frozen copies of such pre-market
encodings — they are never regenerated; a load or re-encode drift here is
a wire-format break, not a golden refresh.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api.service import RunReport
from repro.flexoffer.io import zoned_result_from_dict, zoned_result_to_dict

COMPAT = Path(__file__).parent / "data" / "golden" / "compat"


class TestZonedResultBackcompat:
    def test_pre_market_zoned_result_loads(self):
        payload = json.loads((COMPAT / "zoned_result_v1.json").read_text())
        result = zoned_result_from_dict(payload)
        assert result.clearing is None
        assert [zone.name for zone in result.zones] == ["north", "south"]
        assert all(zone.priced for zone in result.zones)

    def test_pre_market_zoned_result_reencodes_byte_for_byte(self):
        text = (COMPAT / "zoned_result_v1.json").read_text()
        payload = json.loads(text)
        encoded = zoned_result_to_dict(zoned_result_from_dict(payload))
        assert "clearing" not in encoded
        assert encoded == payload
        # Byte-for-byte under the canonical dump: nothing reordered,
        # renamed, coerced or injected by the new market-aware encoder.
        assert json.dumps(encoded, indent=2) + "\n" == json.dumps(
            payload, indent=2
        ) + "\n"


class TestRunReportBackcompat:
    def test_pre_market_run_report_loads(self):
        payload = json.loads((COMPAT / "run_report_v1.json").read_text())
        report = RunReport.from_dict(payload)
        assert report.spec.name == "golden"
        (result,) = report.results
        assert "market_bids" not in result.summary

    def test_pre_market_run_report_reencodes_byte_for_byte(self):
        payload = json.loads((COMPAT / "run_report_v1.json").read_text())
        report = RunReport.from_dict(payload)
        assert report.to_dict() == payload

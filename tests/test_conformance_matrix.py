"""Tier-2 conformance suite: the scenario matrix as parametrized pytest.

One test per compatible (scenario × extractor) cell, each asserting the
full invariant library passes — so every registered approach is proven on
every workload it claims to handle, on every run.  Cell execution is
cached per (scenario, extractor) and scenario fleets are cached by their
builders, so the whole matrix stays well under the 120 s budget.

The matrix *shape* (which cells exist, which invariants pass vs skip) is
golden-pinned: silently dropping a cell, a scenario or an invariant fails
just as loudly as a violated invariant.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

import pytest

from repro.api.registry import available_extractors, get_entry
from repro.cli import main
from repro.conformance import (
    INVARIANTS,
    CellReport,
    ConformanceReport,
    InvariantResult,
    check_cell,
    incompatibility,
    matrix_cells,
    run_cell,
    scenario_matrix,
    scenario_names,
)
from repro.conformance.matrix import ConformanceError, get_scenario

pytestmark = pytest.mark.tier2

GOLDEN = Path(__file__).parent / "data" / "golden"

CELLS = matrix_cells()
CELL_IDS = [f"{scenario.name}--{entry.name}" for scenario, entry in CELLS]


@lru_cache(maxsize=None)
def cell_report(scenario_name: str, extractor_name: str) -> CellReport:
    """Execute one cell once per session, shared by every assertion on it."""
    return check_cell(run_cell(get_scenario(scenario_name), get_entry(extractor_name)))


def full_report() -> ConformanceReport:
    return ConformanceReport(
        cells=tuple(cell_report(s.name, e.name) for s, e in CELLS)
    )


# ---------------------------------------------------------------------- #
# The matrix itself
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("scenario,entry", CELLS, ids=CELL_IDS)
def test_cell_invariants(scenario, entry):
    report = cell_report(scenario.name, entry.name)
    assert report.passed, "\n".join(report.violations())
    # A cell that runs but extracts from an empty matrix would be vacuous;
    # the structural invariants must actually have had offers to inspect
    # for at least the production and baseline approaches (which generate
    # unconditionally).  Appliance approaches may legitimately find nothing
    # on degraded inputs, so no per-cell offer floor is imposed here.
    assert len(report.invariants) == len(INVARIANTS)


def test_matrix_covers_every_registered_extractor():
    covered = {entry.name for _, entry in CELLS}
    assert covered == set(available_extractors())


def test_matrix_covers_every_scenario():
    covered = {scenario.name for scenario, _ in CELLS}
    assert covered == set(scenario_names())
    assert len(scenario_matrix()) >= 8


def test_matrix_produces_offers_overall():
    # The matrix as a whole must be non-vacuous: extraction really happened.
    report = full_report()
    assert sum(cell.offers for cell in report.cells) > 0
    assert sum(cell.aggregates for cell in report.cells) > 0


def test_matrix_shape_matches_golden():
    shape = full_report().shape()
    golden = json.loads((GOLDEN / "conformance_matrix_shape.json").read_text())
    assert shape == golden


def test_incompatibilities_are_stated():
    large = get_scenario("large-fleet")
    reason = incompatibility(large, get_entry("frequency-based"))
    assert reason is not None and "appliance" in reason
    winter = get_scenario("seasonal-winter")
    reason = incompatibility(winter, get_entry("multi-tariff"))
    assert reason is not None and "reference" in reason
    assert incompatibility(winter, get_entry("basic")) is None


def test_scenario_builders_are_cached():
    scenario = get_scenario("seasonal-summer")
    assert scenario.build() is scenario.build()


def test_unknown_scenario_name_raises():
    with pytest.raises(ConformanceError, match="unknown conformance scenario"):
        get_scenario("mars-colony")
    with pytest.raises(ConformanceError, match="available"):
        matrix_cells(scenarios=["mars-colony"])


# ---------------------------------------------------------------------- #
# Report wire format
# ---------------------------------------------------------------------- #


def _tiny_report() -> ConformanceReport:
    """A handcrafted report with fully deterministic values (golden pin)."""
    return ConformanceReport(
        cells=(
            CellReport(
                scenario="unit-scenario",
                extractor="basic",
                households=2,
                days=1,
                offers=3,
                aggregates=1,
                extracted_kwh=1.25,
                invariants=(
                    InvariantResult(
                        name="offer-validity", status="pass", detail="3 offers"
                    ),
                    InvariantResult(
                        name="energy-conservation",
                        status="fail",
                        violations=("hh-0: conservation error 2.0e-03 kWh",),
                    ),
                    InvariantResult(
                        name="engine-fidelity",
                        status="skipped",
                        detail="approach has no pluggable matching engine",
                    ),
                ),
            ),
        )
    )


def test_wire_format_matches_golden():
    report = _tiny_report()
    golden = json.loads((GOLDEN / "conformance_report.json").read_text())
    assert report.to_dict() == golden


def test_wire_format_roundtrip(tmp_path):
    report = _tiny_report()
    assert ConformanceReport.from_json(report.to_json()).to_dict() == report.to_dict()
    path = tmp_path / "report.json"
    report.save(path)
    loaded = ConformanceReport.load(path)
    assert loaded.to_dict() == report.to_dict()
    assert not loaded.passed
    assert loaded.summary() == {
        "cells": 1,
        "passed": 0,
        "failed": 1,
        "violations": 1,
    }


def test_full_report_roundtrips():
    report = full_report()
    assert ConformanceReport.from_json(report.to_json()).to_dict() == report.to_dict()


def test_wire_format_requires_version():
    from repro.errors import DataError

    payload = _tiny_report().to_dict()
    del payload["version"]
    with pytest.raises(DataError, match="missing field: 'version'"):
        ConformanceReport.from_dict(payload)


# ---------------------------------------------------------------------- #
# Runner behaviour
# ---------------------------------------------------------------------- #


def test_worker_fanout_matches_in_process():
    # ROADMAP: `repro conformance --workers N`.  Cells are deterministic,
    # so fanning them out over a process pool must reproduce the in-process
    # report exactly — wire format included.
    from repro.conformance import run_conformance

    kwargs = dict(
        scenarios=["seasonal-summer"],
        extractors=["basic", "peak-based"],
        invariants=["offer-validity", "scheduling-feasibility"],
    )
    in_process = run_conformance(**kwargs)
    fanned = run_conformance(**kwargs, workers=2)
    assert fanned.to_dict() == in_process.to_dict()
    assert fanned.passed


def _die_hard(position, scenario_name, extractor_name, invariants):  # pragma: no cover
    # Module-level so the process pool can pickle it by name; kills the
    # worker without raising (the shape of an OOM kill or segfault).
    import os

    os._exit(1)


def test_hard_worker_death_recovers_identical_cells(monkeypatch):
    # A worker killed outright (OOM, segfault) raises BrokenProcessPool out
    # of future.result().  The fault-tolerant dispatcher retries, and once
    # the (unconditionally dying) worker entry exhausts its attempts, the
    # cells finish in-process — so a dead worker can no longer fail, or
    # lose, a cell: the report must equal the in-process run exactly.
    from repro.conformance import run_conformance
    from repro.conformance import runner as runner_module
    from repro.errors import DegradedExecutionWarning

    kwargs = dict(
        scenarios=["seasonal-summer"],
        extractors=["basic", "peak-based"],
        invariants=["offer-validity"],
    )
    in_process = run_conformance(**kwargs)
    monkeypatch.setattr(runner_module, "_run_cell_to_dict", _die_hard)
    with pytest.warns(DegradedExecutionWarning, match="in-process"):
        report = run_conformance(**kwargs, workers=2)
    assert report.to_dict() == in_process.to_dict()
    assert report.passed


def test_worker_count_validated():
    from repro.conformance import run_conformance
    from repro.errors import ValidationError

    with pytest.raises(ValidationError, match="workers"):
        run_conformance(scenarios=["seasonal-summer"], workers=0)


def test_scheduling_feasibility_enrolled_and_passes():
    report = cell_report("seasonal-summer", "peak-based")
    (feasibility,) = [
        r for r in report.invariants if r.name == "scheduling-feasibility"
    ]
    assert feasibility.status == "pass"
    assert "placed" in feasibility.detail


def test_dst_fallback_week_covers_the_25_hour_day():
    from datetime import datetime

    scenario = get_scenario("dst-fallback-week")
    fleet = scenario.build()
    assert fleet.start == datetime(2012, 10, 22)
    # The week spans the 2012-10-28 fall-back Sunday end to end.
    assert fleet.start.weekday() == 0
    assert fleet.days == 7
    assert "calendar" in scenario.tags


def test_markdown_report_rendering():
    markdown = _tiny_report().to_markdown()
    assert "## Conformance matrix" in markdown
    assert "❌ conformance FAILED" in markdown
    assert "| unit-scenario | basic | 3 | 1 | 1.25 |" in markdown
    assert "FAIL: energy-conservation (1 skipped)" in markdown
    assert "### Violations" in markdown
    assert "conservation error" in markdown


def test_cli_conformance_markdown_and_workers(tmp_path, capsys):
    markdown = tmp_path / "summary.md"
    code = main(
        [
            "conformance",
            "--scenario",
            "seasonal-summer",
            "--extractor",
            "basic",
            "--extractor",
            "peak-based",
            "--invariant",
            "offer-validity",
            "--workers",
            "2",
            "--markdown",
            str(markdown),
        ]
    )
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    text = markdown.read_text()
    assert "✅ conformance passed" in text
    assert "| seasonal-summer | basic |" in text


def test_restricted_invariants_skip_sequential_rerun():
    from repro.conformance import run_conformance

    report = run_conformance(
        scenarios=["seasonal-summer"],
        extractors=["peak-based"],
        invariants=["offer-validity"],
    )
    (cell,) = report.cells
    assert [r.name for r in cell.invariants] == ["offer-validity"]
    assert report.passed


def test_unknown_invariant_fails_before_any_cell_runs(monkeypatch):
    from repro.conformance import run_conformance
    from repro.conformance import runner as runner_module
    from repro.errors import ReproError

    def explode(*args, **kwargs):  # pragma: no cover - must not be reached
        raise AssertionError("a cell ran despite the bad invariant name")

    monkeypatch.setattr(runner_module, "run_cell", explode)
    with pytest.raises(ReproError, match="unknown invariant"):
        run_conformance(invariants=["typoed-name"])


def test_crashing_cell_is_isolated(monkeypatch):
    from repro.conformance import run_conformance
    from repro.conformance import runner as runner_module

    real_run_cell = runner_module.run_cell

    def flaky(scenario, entry, invariants=None):
        if entry.name == "basic":
            raise RuntimeError("synthetic extractor crash")
        return real_run_cell(scenario, entry, invariants)

    monkeypatch.setattr(runner_module, "run_cell", flaky)
    report = run_conformance(
        scenarios=["seasonal-summer"],
        extractors=["basic", "peak-based"],
        invariants=["offer-validity"],
    )
    assert len(report.cells) == 2
    crashed = next(c for c in report.cells if c.extractor == "basic")
    survivor = next(c for c in report.cells if c.extractor == "peak-based")
    assert not crashed.passed
    assert crashed.invariants[0].name == "cell-execution"
    assert "synthetic extractor crash" in crashed.violations()[0]
    assert survivor.passed
    assert not report.passed


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #


def test_cli_conformance_single_cell(tmp_path, capsys):
    out = tmp_path / "conformance.json"
    code = main(
        [
            "conformance",
            "--scenario",
            "seasonal-summer",
            "--extractor",
            "peak-based",
            "--out",
            str(out),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "seasonal-summer" in captured.out
    assert "1 cells: 1 passed, 0 failed, 0 violations" in captured.out
    assert ConformanceReport.load(out).passed


def test_cli_conformance_list(capsys):
    assert main(["conformance", "--list"]) == 0
    captured = capsys.readouterr()
    for name in scenario_names():
        assert name in captured.out
    for invariant in INVARIANTS:
        assert invariant in captured.out

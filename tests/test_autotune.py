"""Engine-crossover autotuner: density statistic, resolution, wiring.

``engine="auto"`` must be a pure wall-clock decision: whatever the
autotuner picks, placements are bitwise those of the engine it resolved
to — and the choice itself must be a deterministic function of workload
shape (offer count, profile spans, axis length), never of timing.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.aggregation.aggregate import aggregate_group
from repro.api import ScheduleSpec
from repro.errors import SchedulingError
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.pipeline.fleet import schedule_aggregates
from repro.scheduling.autotune import (
    AUTO_DENSITY_CROSSOVER,
    AUTO_MIN_OFFERS,
    choose_engine,
    placement_density,
    resolve_engine,
    sweep_offers,
)
from repro.scheduling.greedy import ScheduleConfig, greedy_schedule
from repro.scheduling.zones import MarketZone, ZonedTarget, schedule_zones
from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis, axis_for_days
from repro.timeseries.series import TimeSeries

from tests.test_scheduling import START


def _axis(days: int) -> TimeAxis:
    return axis_for_days(START, days)


def _target(axis: TimeAxis, seed: int = 7) -> TimeSeries:
    rng = np.random.default_rng(seed)
    return TimeSeries(axis, rng.uniform(0.0, 2.0, axis.length), name="target")


def _sparse_workload() -> tuple[list[FlexOffer], TimeSeries]:
    axis = _axis(120)  # long axis, placements rarely collide
    return sweep_offers(AUTO_MIN_OFFERS + 16, axis, seed=1), _target(axis)


def _dense_workload() -> tuple[list[FlexOffer], TimeSeries]:
    axis = _axis(2)  # short axis, placements collide constantly
    return sweep_offers(AUTO_MIN_OFFERS + 16, axis, seed=2), _target(axis)


def _placement_keys(result):
    return [
        (s.offer.offer_id, s.start, s.slice_energies) for s in result.schedules
    ]


class TestPlacementDensity:
    def test_empty_workload_is_zero(self):
        assert placement_density([], _axis(1)) == 0.0

    def test_matches_the_formula(self):
        offers = sweep_offers(10, _axis(30), seed=0)
        mean_span = sum(o.profile_intervals for o in offers) / len(offers)
        expected = 2.0 * len(offers) * mean_span / (96 * 30)
        assert placement_density(offers, _axis(30)) == pytest.approx(expected)

    def test_scales_with_count_and_inverse_axis(self):
        offers = sweep_offers(64, _axis(30), seed=0)
        sparse = placement_density(offers, _axis(120))
        dense = placement_density(offers, _axis(2))
        assert dense > sparse
        doubled = placement_density(offers + offers, _axis(30))
        assert doubled == pytest.approx(2 * placement_density(offers, _axis(30)))


class TestChooseEngine:
    def test_small_workloads_stay_vectorized(self):
        axis = _axis(365)
        offers = sweep_offers(AUTO_MIN_OFFERS - 1, axis, seed=0)
        # Density is far below the crossover, but tiny workloads cannot
        # amortize the incremental engine's block machinery.
        assert placement_density(offers, axis) < AUTO_DENSITY_CROSSOVER
        assert choose_engine(offers, axis) == "vectorized"

    def test_sparse_picks_incremental(self):
        offers, target = _sparse_workload()
        assert placement_density(offers, target.axis) < AUTO_DENSITY_CROSSOVER
        assert choose_engine(offers, target.axis) == "incremental"

    def test_dense_picks_vectorized(self):
        offers, target = _dense_workload()
        assert placement_density(offers, target.axis) > AUTO_DENSITY_CROSSOVER
        assert choose_engine(offers, target.axis) == "vectorized"


class TestResolveEngine:
    def test_non_auto_configs_pass_through_unchanged(self):
        offers, target = _dense_workload()
        for engine in ("vectorized", "incremental", "reference"):
            config = ScheduleConfig(engine=engine)
            assert resolve_engine(config, offers, target.axis) is config

    def test_auto_resolves_to_a_concrete_engine(self):
        offers, target = _sparse_workload()
        config = ScheduleConfig(engine="auto", improve_iterations=3)
        resolved = resolve_engine(config, offers, target.axis)
        assert resolved.engine == "incremental"
        # Every other knob survives the replace.
        assert resolved.improve_iterations == 3


class TestAutoEngineSchedules:
    @pytest.mark.parametrize("workload", ["sparse", "dense"])
    def test_auto_is_bitwise_the_resolved_engine(self, workload):
        offers, target = (
            _sparse_workload() if workload == "sparse" else _dense_workload()
        )
        resolved = choose_engine(offers, target.axis)
        auto = greedy_schedule(offers, target, config=ScheduleConfig(engine="auto"))
        concrete = greedy_schedule(
            offers, target, config=ScheduleConfig(engine=resolved)
        )
        assert _placement_keys(auto) == _placement_keys(concrete)
        assert {s.offer.offer_id for s in auto.schedules} | {
            o.offer_id for o in auto.unplaced
        } == {o.offer_id for o in offers}

    def test_auto_accepted_by_config_validation(self):
        assert ScheduleConfig(engine="auto").engine == "auto"
        with pytest.raises(SchedulingError):
            ScheduleConfig(engine="warp")

    def test_schedule_aggregates_resolves_auto_before_improving(self):
        offers, target = _sparse_workload()
        aggregates = tuple(
            aggregate_group([a, b])
            for a, b in zip(offers[0::2], offers[1::2])
        )
        config = ScheduleConfig(engine="auto", improve_iterations=5, improve_seed=3)
        auto = schedule_aggregates(aggregates, target, config)
        members = [aggregate.offer for aggregate in aggregates]
        concrete = schedule_aggregates(
            aggregates,
            target,
            ScheduleConfig(
                engine=choose_engine(members, target.axis),
                improve_iterations=5,
                improve_seed=3,
            ),
        )
        assert _placement_keys(auto) == _placement_keys(concrete)

    def test_zoned_scheduling_accepts_auto(self):
        offers, target = _sparse_workload()
        aggregates = tuple(aggregate_group([offer]) for offer in offers)
        zones = tuple(
            MarketZone(name=name, target=target)
            for name in ("north", "south")
        )
        assignment = {
            aggregate.offer.offer_id: ("north" if index % 2 else "south")
            for index, aggregate in enumerate(aggregates)
        }
        zoned = ZonedTarget(zones=zones, assignment=assignment)
        result = schedule_zones(aggregates, zoned, ScheduleConfig(engine="auto"))
        assert result.names == ("north", "south")
        placed = sum(len(r.schedules) for r in result.results)
        assert placed >= 1


class TestSweepOffers:
    def test_deterministic_per_seed(self):
        axis = _axis(30)
        one = sweep_offers(8, axis, seed=5)
        two = sweep_offers(8, axis, seed=5)
        assert [o.offer_id for o in one] == [o.offer_id for o in two]
        assert all(
            a.earliest_start == b.earliest_start
            and a.latest_start == b.latest_start
            and a.slices == b.slices
            for a, b in zip(one, two)
        )
        assert [o.offer_id for o in sweep_offers(8, axis, seed=6)] != [
            o.offer_id for o in one
        ]

    def test_offers_fit_the_axis(self):
        axis = _axis(7)
        for offer in sweep_offers(32, axis, seed=0):
            assert offer.earliest_start >= axis.start
            assert offer.latest_start > offer.earliest_start
            assert offer.resolution == FIFTEEN_MINUTES


class TestSpecWiring:
    def test_spec_accepts_auto_and_round_trips(self):
        spec = ScheduleSpec(engine="auto")
        assert ScheduleSpec.from_dict(spec.to_dict()) == spec
        assert spec.config().engine == "auto"

    def test_engine_key_omitted_defaults_to_vectorized(self):
        # Pre-autotuner spec files carry no "engine" key and must keep
        # loading with the old default.
        spec = ScheduleSpec.from_dict({"target": "wind"})
        assert spec.engine == "vectorized"

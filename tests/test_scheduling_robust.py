"""Tests for robust scheduling: scenario fans, risk measures, realized loop.

The uncertainty stack rests on four load-bearing claims, each pinned
here: the risk arithmetic is one shared home (scalar :func:`risk_of`
versus batched :func:`risk_profile`, and through them the reference
versus vectorized robust engines, stay bitwise identical); robust mode
changes *which start wins* but never the wire-visible shape of a
schedule; :func:`evaluate_realized` is an exact arithmetic oracle; and
the session's hold-if-better replan never trades a cheaper open plan for
a costlier fresh one.  The fairness helper's failing-by-construction
fixture lives here too, proving the ``disaggregation-fairness``
invariant can actually fire.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.api.spec import RobustSpec, ScheduleSpec
from repro.conformance.invariants import (
    FAIRNESS_GINI_BOUND,
    FAIRNESS_MIN_SHARE,
    _fairness_violations,
    _gini,
)
from repro.errors import SchedulingError, SpecError
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.scheduling import (
    RobustConfig,
    ScheduleConfig,
    build_schedule_workload,
    cvar_count,
    evaluate_realized,
    greedy_schedule,
    quantile_weights,
    resolve_fan,
    risk_of,
    risk_profile,
    synthetic_fan,
)
from repro.timeseries.axis import axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


@pytest.fixture(scope="module")
def workload():
    """A small but realistic scheduling workload (24 aggregates, 2 days)."""
    aggregates, target = build_schedule_workload(
        n_aggregates=24, members_per_aggregate=2, days=2, seed=7
    )
    return [a.offer for a in aggregates], target


def placements(result):
    return [
        (s.offer.offer_id, s.start, tuple(s.slice_energies)) for s in result.schedules
    ]


class TestRobustConfig:
    def test_defaults_valid(self):
        config = RobustConfig()
        assert config.quantiles == (0.1, 0.5, 0.9)
        assert config.risk == "expected"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quantiles": ()},
            {"quantiles": (0.0, 0.5)},
            {"quantiles": (0.5, 1.0)},
            {"quantiles": (0.5, 0.5)},
            {"quantiles": (0.9, 0.1)},
            {"risk": "worst-case"},
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"sigma": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(SchedulingError):
            RobustConfig(**kwargs)

    def test_incremental_engine_rejected(self):
        with pytest.raises(SchedulingError):
            ScheduleConfig(engine="incremental", robust=RobustConfig())

    def test_auto_and_reference_engines_accepted(self):
        ScheduleConfig(engine="auto", robust=RobustConfig())
        ScheduleConfig(engine="reference", robust=RobustConfig())


class TestRiskArithmetic:
    def test_quantile_weights_midpoint_partition(self):
        np.testing.assert_allclose(
            quantile_weights((0.1, 0.5, 0.9)), [0.3, 0.4, 0.3]
        )
        np.testing.assert_allclose(quantile_weights((0.5,)), [1.0])

    def test_quantile_weights_sum_to_one(self):
        for levels in [(0.2, 0.8), (0.05, 0.25, 0.5, 0.75, 0.95)]:
            assert quantile_weights(levels).sum() == pytest.approx(1.0)

    def test_cvar_count_covers_at_least_one(self):
        assert cvar_count(0.3, 3) == 1
        assert cvar_count(0.5, 3) == 2
        assert cvar_count(0.01, 3) == 1
        assert cvar_count(1.0, 5) == 5

    def test_risk_of_expected_is_weighted_mean(self):
        gains = np.array([1.0, 2.0, 4.0])
        weights = quantile_weights((0.1, 0.5, 0.9))
        assert risk_of(gains, weights, "expected", 0.3) == pytest.approx(
            0.3 * 1.0 + 0.4 * 2.0 + 0.3 * 4.0
        )

    def test_risk_of_cvar_is_worst_tail_mean(self):
        gains = np.array([4.0, 1.0, 2.0])
        weights = quantile_weights((0.1, 0.5, 0.9))
        assert risk_of(gains, weights, "cvar", 0.3) == pytest.approx(1.0)
        assert risk_of(gains, weights, "cvar", 0.5) == pytest.approx(1.5)
        assert risk_of(gains, weights, "cvar", 1.0) == pytest.approx(7.0 / 3.0)

    def test_risk_profile_matches_scalar_columns(self):
        rng = np.random.default_rng(3)
        gains = rng.normal(size=(3, 40))
        weights = quantile_weights((0.1, 0.5, 0.9))
        for risk, alpha in (("expected", 0.3), ("cvar", 0.3), ("cvar", 0.7)):
            batched = risk_profile(gains, weights, risk, alpha)
            scalar = [risk_of(gains[:, j], weights, risk, alpha) for j in range(40)]
            # Batched matmul may differ from per-column dots by an ulp;
            # the engines stay bitwise because near-ties re-score through
            # the scalar risk_of path.
            np.testing.assert_allclose(batched, scalar, rtol=1e-12)


class TestScenarioFans:
    def test_synthetic_fan_median_reproduces_target(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries(axis, np.linspace(0, 5, axis.length), "wind")
        fan = synthetic_fan(target, RobustConfig(quantiles=(0.1, 0.5, 0.9)))
        assert np.array_equal(fan[1].values, target.values)
        assert fan[0].name == "wind@q0.1"

    def test_synthetic_fan_monotone_on_nonnegative_target(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries(axis, np.abs(np.sin(np.arange(axis.length) / 7.0)))
        fan = synthetic_fan(target, RobustConfig())
        matrix = np.stack([s.values for s in fan])
        assert np.all(np.diff(matrix, axis=0) >= 0.0)

    def test_resolve_fan_synthesises_when_absent(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries(axis, np.ones(axis.length), "t")
        robust = RobustConfig(sigma=0.1)
        matrix, weights = resolve_fan(target, robust)
        explicit = np.stack([s.values for s in synthetic_fan(target, robust)])
        assert np.array_equal(matrix, explicit)
        assert weights.sum() == pytest.approx(1.0)

    def test_resolve_fan_validates_explicit_scenarios(self):
        axis = axis_for_days(START, 1)
        target = TimeSeries(axis, np.ones(axis.length), "t")
        robust = RobustConfig(quantiles=(0.1, 0.5, 0.9))
        with pytest.raises(SchedulingError):
            resolve_fan(target, robust, scenarios=[target, target])  # 2 != 3
        with pytest.raises(SchedulingError):
            resolve_fan(target, robust, scenarios=[target, np.ones(axis.length), target])


class TestEngineEquivalence:
    @pytest.mark.parametrize("risk", ["expected", "cvar"])
    def test_reference_and_vectorized_bitwise_identical(self, workload, risk):
        offers, target = workload
        robust = RobustConfig(quantiles=(0.1, 0.5, 0.9), risk=risk, alpha=0.3)
        vec = greedy_schedule(offers, target, config=ScheduleConfig(robust=robust))
        ref = greedy_schedule(
            offers, target, config=ScheduleConfig(engine="reference", robust=robust)
        )
        assert placements(vec) == placements(ref)
        assert vec.cost == pytest.approx(ref.cost, rel=1e-9)

    def test_robust_runs_deterministic(self, workload):
        offers, target = workload
        config = ScheduleConfig(robust=RobustConfig(risk="cvar"))
        first = greedy_schedule(offers, target, config=config)
        second = greedy_schedule(offers, target, config=config)
        assert placements(first) == placements(second)

    def test_robust_changes_starts_not_feasibility(self, workload):
        """Every robust placement is still a valid point-mode placement."""
        offers, target = workload
        robust = greedy_schedule(
            offers, target, config=ScheduleConfig(robust=RobustConfig(risk="cvar"))
        )
        assert robust.schedules
        for sched in robust.schedules:
            assert sched.offer.earliest_start <= sched.start <= sched.offer.latest_start
            for energy, profile in zip(sched.slice_energies, sched.offer.slices):
                assert profile.energy_min - 1e-9 <= energy <= profile.energy_max + 1e-9

    def test_explicit_scenarios_steer_placement(self):
        """A fan that contradicts the point target moves the chosen start."""
        axis = axis_for_days(START, 1)
        point = np.zeros(axis.length)
        point[40:42] = 1.0
        shifted = np.zeros(axis.length)
        shifted[60:62] = 1.0
        target = TimeSeries(axis, point, "t")
        est = START
        fo = FlexOffer(
            earliest_start=est,
            latest_start=est + timedelta(hours=23),
            slices=(ProfileSlice(0.4, 0.6), ProfileSlice(0.4, 0.6)),
        )
        robust = RobustConfig(quantiles=(0.1, 0.5, 0.9), risk="cvar", alpha=0.3)
        fan = [TimeSeries(axis, shifted, "s")] * 3
        steered = greedy_schedule(
            [fo], target, config=ScheduleConfig(robust=robust), scenarios=fan
        )
        plain = greedy_schedule([fo], target)
        assert axis.index_of(plain.schedules[0].start) == 40
        assert axis.index_of(steered.schedules[0].start) == 60


class TestEvaluateRealized:
    def make_result(self):
        axis = axis_for_days(START, 1)
        values = np.zeros(axis.length)
        values[40:42] = 1.0
        target = TimeSeries(axis, values, "t")
        fo = FlexOffer(
            earliest_start=START,
            latest_start=START + timedelta(hours=20),
            slices=(ProfileSlice(0.3, 0.7), ProfileSlice(0.3, 0.7)),
        )
        return greedy_schedule([fo], target), target

    def test_exact_arithmetic(self):
        result, target = self.make_result()
        realized = TimeSeries(target.axis, target.values * 1.5, "realized")
        evaluation = evaluate_realized(result, realized)
        diff = result.demand.values - realized.values
        assert evaluation.realized_cost == pytest.approx(float(diff @ diff))
        assert evaluation.realized_baseline_cost == pytest.approx(
            float(realized.values @ realized.values)
        )
        assert evaluation.planned_cost == pytest.approx(result.cost)
        assert evaluation.forecast_regret == pytest.approx(
            evaluation.realized_cost - evaluation.planned_cost
        )
        assert 0.0 <= evaluation.realized_improvement <= 1.0

    def test_perfect_realization_zero_regret(self):
        result, target = self.make_result()
        evaluation = evaluate_realized(result, target)
        assert evaluation.forecast_regret == pytest.approx(0.0)
        assert evaluation.realized_cost == pytest.approx(result.cost)

    def test_axis_mismatch_rejected(self):
        result, target = self.make_result()
        other = TimeSeries(axis_for_days(START + timedelta(days=1), 1), np.ones(96))
        with pytest.raises(Exception):
            evaluate_realized(result, other)
        with pytest.raises(SchedulingError):
            evaluate_realized(result, target.values)

    def test_summary_keys(self):
        result, target = self.make_result()
        summary = evaluate_realized(result, target).summary()
        assert set(summary) == {
            "realized_cost",
            "realized_baseline_cost",
            "realized_improvement",
            "planned_cost",
            "forecast_regret",
        }


class TestRobustSpecWire:
    def test_round_trip_with_robust(self):
        spec = ScheduleSpec(
            robust=RobustSpec(quantiles=(0.1, 0.5, 0.9), risk="cvar", alpha=0.25)
        )
        encoded = spec.to_dict()
        assert encoded["robust"]["risk"] == "cvar"
        back = ScheduleSpec.from_dict(encoded)
        assert back.robust is not None
        assert back.robust.quantiles == (0.1, 0.5, 0.9)
        assert back.robust.alpha == 0.25
        assert back.to_dict() == encoded

    def test_wire_key_omitted_when_absent(self):
        spec = ScheduleSpec()
        assert "robust" not in spec.to_dict()
        assert ScheduleSpec.from_dict(spec.to_dict()).robust is None

    def test_robust_spec_validation_surfaces_as_spec_error(self):
        with pytest.raises(SpecError):
            RobustSpec(risk="worst-case").config()

    def test_config_bridge(self):
        config = RobustSpec(quantiles=(0.2, 0.8), risk="cvar", alpha=0.4).config()
        assert isinstance(config, RobustConfig)
        assert config.quantiles == (0.2, 0.8)


class TestSessionRealizedContract:
    """Hold-if-better replans: retargeting to reality never hurts ex post."""

    def test_replan_after_retarget_never_worse_on_realized(self):
        from repro.api import input_series_for
        from repro.pipeline.fleet import fleet_schedule_target
        from repro.session import FlexibilitySession
        from repro.workloads.scenarios import small_fleet

        fleet = small_fleet(n=2, days=2, seed=5)
        target = fleet_schedule_target(fleet, seed=3)
        session = FlexibilitySession.for_fleet(fleet, target=target)
        inputs = [input_series_for(session.extractor, trace) for trace in fleet]
        axis = inputs[0].axis
        half = axis.length // 2
        for index, series in enumerate(inputs):
            session.ingest(index, 0, series.values[:half])
        session.replan()
        session.commit(axis.start + half * axis.resolution)
        for index, series in enumerate(inputs):
            session.ingest(index, half, series.values[half:])
        stale = session.replan()
        assert stale.schedule is not None
        rng = np.random.default_rng(42)
        realized = TimeSeries(
            target.axis,
            target.values * (1.0 + 0.25 * (rng.random(target.axis.length) - 0.5)),
            "realized",
        )
        stale_eval = evaluate_realized(stale.schedule, realized)
        session.retarget(realized)
        fresh = session.replan()
        fresh_eval = evaluate_realized(fresh.schedule, realized)
        tolerance = 1e-9 * max(1.0, abs(stale_eval.realized_cost))
        assert fresh_eval.realized_cost <= stale_eval.realized_cost + tolerance


class TestFairnessHelper:
    """The disaggregation-fairness machinery can actually fire."""

    def test_gini_extremes(self):
        assert _gini([1.0, 1.0, 1.0, 1.0]) == pytest.approx(0.0)
        assert _gini([0.0, 0.0, 0.0, 100.0]) == pytest.approx(0.75)
        assert _gini([5.0]) == 0.0
        assert _gini([]) == 0.0

    def test_failing_by_construction_fixture(self):
        # One member hoards everything over equal capacities: both the
        # min-share floor and the Gini bound must fire.
        violations = _fairness_violations("fixture", [100.0, 0.0], [1.0, 1.0])
        assert violations
        assert any("share" in v for v in violations)

    def test_skewed_allocation_trips_gini_bound(self):
        allocations = [97.0, 1.0, 1.0, 1.0]
        capacities = [1.0, 1.0, 1.0, 1.0]
        ratios = [a / c for a, c in zip(allocations, capacities)]
        assert _gini(ratios) > FAIRNESS_GINI_BOUND
        assert _fairness_violations("fixture", allocations, capacities)

    def test_proportional_allocation_is_clean(self):
        # Allocations exactly proportional to capacity: no violations.
        capacities = [1.0, 2.0, 3.0]
        allocations = [10.0, 20.0, 30.0]
        assert _fairness_violations("fixture", allocations, capacities) == []

    def test_min_share_floor_scales_with_capacity(self):
        # A small-capacity member getting its fair (proportional) share
        # stays above the floor even when large members dwarf it.
        capacities = [10.0, 1.0]
        allocations = [100.0, 10.0]
        assert _fairness_violations("fixture", allocations, capacities) == []
        starved = [109.0, 1.0]
        floor = FAIRNESS_MIN_SHARE * (1.0 / 11.0) * 110.0
        assert starved[1] < floor
        assert _fairness_violations("fixture", starved, capacities)

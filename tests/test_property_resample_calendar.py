"""Property tests: resampling and calendar logic around DST and gaps.

The conformance matrix runs whole fleets across the 2012 European DST
spring-forward week; these hypothesis properties pin the substrate that
makes that safe: resampling round-trips are exact on *any* anchor date
(transition weeks included, since the library's naive standard-time axes
never jump), axes stay strictly monotonic, and irregular/gap-ridden
readings reassemble onto the grid losslessly.
"""

from __future__ import annotations

from datetime import date, datetime, time, timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis
from repro.timeseries.calendar import (
    DailyWindow,
    DayType,
    Season,
    day_type,
    is_holiday,
    minutes_since_midnight,
    season,
)
from repro.timeseries.clean import assemble_regular, fill_missing, find_gaps
from repro.timeseries.resample import (
    downsample_mean,
    downsample_sum,
    upsample_repeat,
    upsample_spread,
)
from repro.timeseries.series import TimeSeries

#: The 2012 European spring-forward instant falls inside this week.
DST_WEEK = datetime(2012, 3, 19)

#: Anchor dates biased toward the interesting calendar terrain: DST weeks
#: (spring and autumn 2012), year boundary, leap day, plus arbitrary days.
anchor_dates = st.one_of(
    st.just(DST_WEEK),
    st.just(datetime(2012, 10, 22)),   # autumn transition week (2012-10-28)
    st.just(datetime(2011, 12, 26)),   # year boundary + stacked holidays
    st.just(datetime(2012, 2, 27)),    # leap-day week
    st.datetimes(
        min_value=datetime(2010, 1, 1), max_value=datetime(2015, 1, 1)
    ).map(lambda dt: dt.replace(hour=0, minute=0, second=0, microsecond=0)),
)

energy_values = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


class TestResampleRoundTrips:
    @settings(deadline=None, max_examples=60)
    @given(start=anchor_dates, days=st.integers(1, 3), data=st.data())
    def test_upsample_then_downsample_is_identity(self, start, days, data):
        axis = TimeAxis(start, FIFTEEN_MINUTES, 96 * days)
        values = data.draw(
            arrays(np.float64, axis.length, elements=energy_values)
        )
        series = TimeSeries(axis, values)
        fine = upsample_spread(series, ONE_MINUTE)
        back = downsample_sum(fine, FIFTEEN_MINUTES)
        assert back.axis == series.axis
        np.testing.assert_allclose(back.values, series.values, atol=1e-9)

    @settings(deadline=None, max_examples=60)
    @given(start=anchor_dates, days=st.integers(1, 2), data=st.data())
    def test_downsample_sum_conserves_energy(self, start, days, data):
        axis = TimeAxis(start, ONE_MINUTE, 1440 * days)
        values = data.draw(
            arrays(np.float64, axis.length, elements=energy_values)
        )
        series = TimeSeries(axis, values)
        coarse = downsample_sum(series, FIFTEEN_MINUTES)
        assert coarse.total() == pytest.approx(series.total(), abs=1e-6)
        assert coarse.axis.start == series.axis.start
        assert coarse.axis.length * 15 == series.axis.length

    @settings(deadline=None, max_examples=40)
    @given(start=anchor_dates, data=st.data())
    def test_mean_repeat_roundtrip(self, start, data):
        axis = TimeAxis(start, FIFTEEN_MINUTES, 96)
        values = data.draw(
            arrays(np.float64, axis.length, elements=energy_values)
        )
        series = TimeSeries(axis, values)
        fine = upsample_repeat(series, ONE_MINUTE)
        back = downsample_mean(fine, FIFTEEN_MINUTES)
        np.testing.assert_allclose(back.values, series.values, atol=1e-9)
        # Repeating preserves per-interval *power*, so the fine series mean
        # equals the coarse series mean.
        assert fine.mean() == pytest.approx(series.mean(), abs=1e-9)


class TestMonotonicAxes:
    @settings(deadline=None, max_examples=60)
    @given(start=anchor_dates, length=st.integers(1, 4 * 96))
    def test_times_strictly_increasing_and_invertible(self, start, length):
        axis = TimeAxis(start, FIFTEEN_MINUTES, length)
        times = list(axis.times())
        assert all(b - a == FIFTEEN_MINUTES for a, b in zip(times, times[1:]))
        probes = {0, length // 2, length - 1}
        for index in probes:
            assert axis.index_of(axis.time_at(index)) == index
        assert axis.end - axis.start == FIFTEEN_MINUTES * length

    @settings(deadline=None, max_examples=40)
    @given(start=anchor_dates, days=st.integers(1, 7))
    def test_day_slices_partition_whole_days(self, start, days):
        axis = TimeAxis(start, FIFTEEN_MINUTES, 96 * days)
        slices = axis.day_slices()
        assert len(slices) == days
        assert all(length == 96 for _, length in slices)
        assert sum(length for _, length in slices) == axis.length
        firsts = [first for first, _ in slices]
        assert firsts == sorted(firsts)


class TestGapReassembly:
    @settings(deadline=None, max_examples=60)
    @given(
        start=anchor_dates,
        length=st.integers(4, 192),
        data=st.data(),
    )
    def test_find_gaps_reports_exactly_the_dropped_intervals(
        self, start, length, data
    ):
        axis = TimeAxis(start, FIFTEEN_MINUTES, length)
        # Drop a strict subset of the interior (endpoints anchor the grid).
        interior = list(range(1, length - 1))
        dropped = set(
            data.draw(
                st.lists(st.sampled_from(interior), unique=True, max_size=len(interior))
            )
            if interior
            else []
        )
        kept = [axis.time_at(i) for i in range(length) if i not in dropped]
        gaps = find_gaps(kept, FIFTEEN_MINUTES)
        covered: set[int] = set()
        for gap_start, gap_end in gaps:
            assert gap_start < gap_end
            index = axis.index_of(gap_start)
            while axis.time_at(index) < gap_end:
                covered.add(index)
                index += 1
        assert covered == dropped

    @settings(deadline=None, max_examples=40)
    @given(start=anchor_dates, data=st.data())
    def test_assemble_and_fill_restores_grid(self, start, data):
        axis = TimeAxis(start, FIFTEEN_MINUTES, 96)
        values = data.draw(
            arrays(np.float64, axis.length, elements=energy_values)
        )
        dropped = set(
            data.draw(st.lists(st.integers(1, 94), unique=True, max_size=40))
        )
        readings = [
            (axis.time_at(i), float(values[i]))
            for i in range(axis.length)
            if i not in dropped
        ]
        series, missing = assemble_regular(readings, FIFTEEN_MINUTES)
        assert series.axis == axis
        assert set(np.flatnonzero(missing)) == dropped
        filled = fill_missing(series, missing, method="interpolate")
        assert filled.axis == axis
        assert np.isfinite(filled.values).all()
        present = ~missing
        np.testing.assert_allclose(
            filled.values[present], values[present], atol=1e-9
        )


class TestCalendarProperties:
    @settings(deadline=None, max_examples=100)
    @given(
        day=st.dates(min_value=date(2010, 1, 1), max_value=date(2015, 12, 31))
    )
    def test_day_type_total_and_holiday_rule(self, day):
        dtype = day_type(day)
        assert dtype in DayType
        if is_holiday(day):
            assert dtype is DayType.SUNDAY
        elif day.weekday() < 5:
            assert dtype is DayType.WORKDAY
        assert dtype.is_weekend == (dtype is not DayType.WORKDAY)

    @settings(deadline=None, max_examples=100)
    @given(
        day=st.dates(min_value=date(2010, 1, 1), max_value=date(2015, 12, 31))
    )
    def test_season_total_function(self, day):
        expected = {
            12: Season.WINTER, 1: Season.WINTER, 2: Season.WINTER,
            3: Season.SPRING, 4: Season.SPRING, 5: Season.SPRING,
            6: Season.SUMMER, 7: Season.SUMMER, 8: Season.SUMMER,
            9: Season.AUTUMN, 10: Season.AUTUMN, 11: Season.AUTUMN,
        }
        assert season(day) is expected[day.month]

    def test_dst_week_day_types(self):
        # Mon 2012-03-19 .. Sun 2012-03-25 (the spring-forward Sunday).
        days = [DST_WEEK.date() + timedelta(days=i) for i in range(7)]
        types = [day_type(d) for d in days]
        assert types[:5] == [DayType.WORKDAY] * 5
        assert types[5] is DayType.SATURDAY
        assert types[6] is DayType.SUNDAY

    @settings(deadline=None, max_examples=100)
    @given(
        start_minute=st.integers(0, 1439),
        end_minute=st.integers(0, 1439),
        probe=st.integers(0, 1439),
    )
    def test_daily_window_contains_matches_arithmetic(
        self, start_minute, end_minute, probe
    ):
        window = DailyWindow(
            time(start_minute // 60, start_minute % 60),
            time(end_minute // 60, end_minute % 60),
        )
        when = time(probe // 60, probe % 60)
        if start_minute <= end_minute:
            expected = start_minute <= probe < end_minute
        else:
            expected = probe >= start_minute or probe < end_minute
        assert window.contains(when) == expected
        assert window.wraps_midnight == (end_minute < start_minute)
        assert minutes_since_midnight(when) == probe
        duration_minutes = (end_minute - start_minute) % (24 * 60)
        assert window.duration() == timedelta(minutes=duration_minutes)

"""Rolling-horizon session: the chunked-arrival equivalence oracle.

The tentpole contract of :mod:`repro.session`: a
:class:`~repro.session.FlexibilitySession` fed the same meter readings in
*any* chunked arrival order finishes in exactly the state of a one-shot
batch run — placements, costs and wire encoding included — as long as no
commitments were taken; and once a placement IS committed, no later
replan may move it.  Plus the wire layers the session leans on: the
versioned :func:`~repro.flexoffer.io.report_delta`, the
:class:`~repro.api.SessionSpec` key, and the replay driver behind
``repro session --replay``.
"""

from __future__ import annotations

from datetime import timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SessionSpec, input_series_for
from repro.api.spec import PipelineSpec
from repro.errors import DataError, SessionError, SpecError
from repro.flexoffer.io import (
    any_schedule_to_dict,
    apply_report_delta,
    report_delta,
)
from repro.pipeline.fleet import (
    fleet_schedule_target,
    results_identical,
    run_sequential,
)
from repro.session import COMMIT_ID_PREFIX, FlexibilitySession
from repro.workloads.scenarios import small_fleet


@pytest.fixture(scope="module")
def session_fleet():
    """Three households, two days — small enough for many session runs."""
    return small_fleet(n=3, days=2, seed=5)


@pytest.fixture(scope="module")
def target(session_fleet):
    return fleet_schedule_target(session_fleet, seed=3)


@pytest.fixture(scope="module")
def oneshot(session_fleet, target):
    """The batch run every chunked arrival order must reproduce."""
    return run_sequential(session_fleet, target=target)


def fresh_session(fleet, target, **kwargs) -> FlexibilitySession:
    return FlexibilitySession.for_fleet(fleet, target=target, **kwargs)


def household_inputs(session: FlexibilitySession, fleet):
    return [input_series_for(session.extractor, trace) for trace in fleet]


class TestChunkedArrivalOracle:
    """Any arrival order, same final state as the one-shot batch run."""

    def finish(self, session, fleet):
        snapshot = session.replan()
        assert snapshot.watermark == session.state.households[0].axis.end
        return snapshot

    def test_household_major_single_replan(self, session_fleet, target, oneshot):
        session = fresh_session(session_fleet, target)
        for index, series in enumerate(household_inputs(session, session_fleet)):
            session.ingest(index, 0, series.values)
        snapshot = self.finish(session, session_fleet)
        assert results_identical(snapshot.fleet_result(), oneshot)

    def test_halves_with_intermediate_replan(self, session_fleet, target, oneshot):
        session = fresh_session(session_fleet, target)
        inputs = household_inputs(session, session_fleet)
        half = inputs[0].axis.length // 2
        for index, series in enumerate(inputs):
            session.ingest(index, 0, series.values[:half])
        session.replan()  # intermediate state is allowed to differ ...
        for index, series in enumerate(inputs):
            session.ingest(index, half, series.values[half:])
        snapshot = self.finish(session, session_fleet)
        # ... but the final one must be the batch run, bitwise.
        assert results_identical(snapshot.fleet_result(), oneshot)

    def test_reverse_order_uneven_chunks(self, session_fleet, target, oneshot):
        session = fresh_session(session_fleet, target)
        inputs = household_inputs(session, session_fleet)
        length = inputs[0].axis.length
        cuts = [0, length // 3, length // 2, length]
        for lo, hi in zip(cuts, cuts[1:]):
            for index in reversed(range(len(inputs))):
                session.ingest(index, lo, inputs[index].values[lo:hi])
            session.replan()
        snapshot = session.snapshot()
        assert results_identical(snapshot.fleet_result(), oneshot)

    def test_wire_encoding_matches_across_orders(self, session_fleet, target):
        # Two different arrival orders: identical snapshot *encodings*,
        # schedule wire dict included — not merely equal Python objects.
        first = fresh_session(session_fleet, target)
        inputs = household_inputs(first, session_fleet)
        for index, series in enumerate(inputs):
            first.ingest(index, 0, series.values)
        dict_a = first.replan().to_dict()

        second = fresh_session(session_fleet, target)
        half = inputs[0].axis.length // 2
        for index in reversed(range(len(inputs))):
            second.ingest(index, half, inputs[index].values[half:])
        for index, series in enumerate(inputs):
            second.ingest(index, 0, series.values[:half])
        second.replan()
        dict_b = second.snapshot().to_dict()
        # Versions may differ (replan counts); everything else is bitwise.
        dict_a.pop("state_version")
        dict_b.pop("state_version")
        assert dict_a == dict_b

    def test_oneshot_schedule_encoding(self, session_fleet, target, oneshot):
        session = fresh_session(session_fleet, target)
        for index, series in enumerate(household_inputs(session, session_fleet)):
            session.ingest(index, 0, series.values)
        snapshot = session.replan()
        assert any_schedule_to_dict(snapshot.schedule) == any_schedule_to_dict(
            oneshot.schedule
        )
        assert snapshot.schedule.cost == oneshot.schedule.cost


class TestIncrementalReextraction:
    def test_clean_households_are_not_reextracted(self, session_fleet, target):
        session = fresh_session(session_fleet, target)
        inputs = household_inputs(session, session_fleet)
        for index, series in enumerate(inputs):
            session.ingest(index, 0, series.values)
        session.replan()
        before = [h.offers for h in session.state.households]
        # Dirty only household 0 (rewrite the same values); the others'
        # offer tuples must be reused object-identically.
        session.ingest(0, 0, inputs[0].values)
        session.replan()
        after = [h.offers for h in session.state.households]
        assert after[0] == before[0]  # same data, same offers
        for index in range(1, len(inputs)):
            assert after[index] is before[index]


class TestCommitHorizon:
    def test_committed_placements_never_move(self, session_fleet, target):
        session = fresh_session(
            session_fleet, target, commit_horizon=timedelta(hours=6)
        )
        inputs = household_inputs(session, session_fleet)
        length = inputs[0].axis.length
        cuts = [0, length // 3, 2 * length // 3, length]
        snapshots = []
        for lo, hi in zip(cuts, cuts[1:]):
            for index, series in enumerate(inputs):
                session.ingest(index, lo, series.values[lo:hi])
            snapshots.append(session.replan())
        assert snapshots[-1].committed, "workload must actually commit"
        for earlier, later in zip(snapshots, snapshots[1:]):
            later_by_id = {s.offer.offer_id: s for s in later.committed}
            for placement in earlier.committed:
                assert later_by_id[placement.offer.offer_id] == placement
        final = snapshots[-1]
        planned = {s.offer.offer_id: s for s in final.schedule.schedules}
        for placement in final.committed:
            assert placement.offer.offer_id.startswith(f"{COMMIT_ID_PREFIX}-")
            assert planned[placement.offer.offer_id] == placement

    def test_commit_members_leave_the_open_plan(self, session_fleet, target):
        session = fresh_session(
            session_fleet, target, commit_horizon=timedelta(hours=6)
        )
        inputs = household_inputs(session, session_fleet)
        for index, series in enumerate(inputs):
            session.ingest(index, 0, series.values)
        snapshot = session.replan()
        committed_members = session.state.committed_members
        assert snapshot.committed and committed_members
        open_ids = {
            offer.offer_id for offer in session.state.planned_offers()
        }
        assert not open_ids & committed_members

    def test_explicit_commit_bumps_version(self, session_fleet, target):
        session = fresh_session(session_fleet, target)
        inputs = household_inputs(session, session_fleet)
        for index, series in enumerate(inputs):
            session.ingest(index, 0, series.values)
        snapshot = session.replan()
        axis = inputs[0].axis
        newly = session.commit(axis.end)
        assert newly == len(snapshot.schedule.schedules)
        assert session.state.version == snapshot.version + 1
        assert len(session.snapshot().committed) == newly

    def test_commit_without_target_raises(self, session_fleet):
        session = fresh_session(session_fleet, target=None)
        with pytest.raises(SessionError, match="target"):
            session.commit(session.state.households[0].axis.end)


class TestSessionErrors:
    def test_empty_fleet_raises(self):
        with pytest.raises(SessionError, match="at least one household"):
            FlexibilitySession([])

    def test_ingest_out_of_range_household(self, session_fleet, target):
        session = fresh_session(session_fleet, target)
        with pytest.raises(SessionError, match="out of range"):
            session.ingest(99, 0, [0.1])

    def test_ingest_overrunning_chunk(self, session_fleet, target):
        session = fresh_session(session_fleet, target)
        length = session.state.households[0].axis.length
        with pytest.raises(SessionError, match="overrun"):
            session.ingest(0, length - 1, [0.1, 0.2, 0.3])


class TestReportDelta:
    def snapshots(self, session_fleet, target):
        session = fresh_session(session_fleet, target)
        inputs = household_inputs(session, session_fleet)
        half = inputs[0].axis.length // 2
        for index, series in enumerate(inputs):
            session.ingest(index, 0, series.values[:half])
        a = session.replan().to_dict()
        for index, series in enumerate(inputs):
            session.ingest(index, half, series.values[half:])
        b = session.replan().to_dict()
        return a, b

    def test_delta_roundtrip_on_real_snapshots(self, session_fleet, target):
        a, b = self.snapshots(session_fleet, target)
        delta = report_delta(a, b)
        assert apply_report_delta(delta, a) == b

    def test_identity_delta_is_empty(self, session_fleet, target):
        a, _ = self.snapshots(session_fleet, target)
        delta = report_delta(a, a)
        assert delta["households"]["upserted"] == []
        assert delta["households"]["removed"] == []
        assert apply_report_delta(delta, a) == a

    def test_base_version_mismatch_raises(self, session_fleet, target):
        a, b = self.snapshots(session_fleet, target)
        delta = report_delta(a, b)
        with pytest.raises(DataError, match="base"):
            apply_report_delta(delta, b)

    def test_unsupported_delta_version_raises(self, session_fleet, target):
        a, b = self.snapshots(session_fleet, target)
        delta = report_delta(a, b)
        delta["version"] = 99
        with pytest.raises(DataError, match="version"):
            apply_report_delta(delta, a)


class TestSessionSpec:
    def test_roundtrip(self):
        spec = SessionSpec(commit_horizon_minutes=360)
        assert SessionSpec.from_dict(spec.to_dict()) == spec
        assert spec.commit_horizon() == timedelta(hours=6)

    def test_null_horizon(self):
        spec = SessionSpec()
        assert spec.commit_horizon() is None
        assert SessionSpec.from_dict(spec.to_dict()) == spec

    def test_negative_horizon_rejected(self):
        with pytest.raises(SpecError, match="commit_horizon_minutes"):
            SessionSpec(commit_horizon_minutes=-1)

    def test_pipeline_key_omitted_when_absent(self):
        assert "session" not in PipelineSpec().to_dict()
        pipeline = PipelineSpec(session=SessionSpec(commit_horizon_minutes=30))
        encoded = pipeline.to_dict()
        assert encoded["session"] == {"commit_horizon_minutes": 30}
        assert PipelineSpec.from_dict(encoded) == pipeline

    def test_unknown_session_key_rejected(self):
        with pytest.raises(SpecError, match="pipeline.session"):
            PipelineSpec.from_dict({"session": {"commit_horizon": 3}})


class TestReplayDriver:
    def test_example_event_file_replays(self):
        from repro.session import replay_session

        report = replay_session("examples/specs/session_events.json")
        assert report["version"] == 1
        assert report["committed_stable"] is True
        assert len(report["replans"]) >= 2
        assert len(report["deltas"]) == len(report["replans"]) - 1
        assert report["final"]["state_version"] == (
            report["replans"][-1]["state_version"]
        )

    def test_bad_version_raises(self, tmp_path):
        from repro.session import load_session_events

        path = tmp_path / "events.json"
        path.write_text('{"version": 99, "spec": {}, "events": []}')
        with pytest.raises(SessionError, match="version"):
            load_session_events(path)

    def test_unknown_event_type_raises(self, tmp_path):
        from repro.session import load_session_events

        path = tmp_path / "events.json"
        path.write_text(
            '{"version": 1, "spec": {"kind": "fleet"}, '
            '"events": [{"type": "explode"}]}'
        )
        with pytest.raises(SessionError, match="events\\[0\\]"):
            load_session_events(path)


class TestRandomChunkingProperty:
    """Hypothesis: any chunking/permutation ends in the one-shot state."""

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_random_arrival_order_matches_oneshot(self, data):
        fleet = small_fleet(n=2, days=1, seed=5)
        from repro.api import create_extractor

        extractor = create_extractor("basic")
        oneshot = run_sequential(
            fleet, extractor=extractor, target=fleet_schedule_target(fleet, seed=3)
        )
        session = FlexibilitySession.for_fleet(
            fleet,
            extractor=create_extractor("basic"),
            target=fleet_schedule_target(fleet, seed=3),
        )
        inputs = household_inputs(session, fleet)
        length = inputs[0].axis.length
        chunks = []
        for index in range(len(inputs)):
            n_cuts = data.draw(st.integers(0, 3), label=f"cuts-{index}")
            cuts = sorted(
                data.draw(
                    st.lists(
                        st.integers(1, length - 1),
                        min_size=n_cuts,
                        max_size=n_cuts,
                        unique=True,
                    ),
                    label=f"cutpoints-{index}",
                )
            )
            bounds = [0, *cuts, length]
            chunks.extend(
                (index, lo, hi) for lo, hi in zip(bounds, bounds[1:])
            )
        order = data.draw(st.permutations(chunks), label="arrival order")
        replan_after = data.draw(
            st.sets(st.integers(0, len(order) - 1)), label="replan points"
        )
        for position, (index, lo, hi) in enumerate(order):
            session.ingest(index, lo, inputs[index].values[lo:hi])
            if position in replan_after:
                session.replan()
        final = session.replan()
        assert results_identical(final.fleet_result(), oneshot)

"""The market subsystem: priced bids, merit-order clearing, welfare.

Covers the tentpole contract of ``repro.market``:

* bid derivation — :func:`price_offer` (scalar reference) versus
  :func:`price_offers_batched` (vectorized), held **bitwise equal** on real
  fleet offers, explicit total-energy bounds, and the cached
  ``profile_arrays`` fast path;
* per-zone merit-order clearing — engine equivalence (identical acceptance
  sets, bitwise prices), budget balance, individual rationality, lumpy /
  no-supply / pass-through dispositions, and the bounded cross-zone spill;
* the scheduling integration — ``ScheduleConfig(market=...)`` clears before
  placement, rejected bids surface as unplaced offers of their home zone,
  and unpriced zones are refused with a pinned error message;
* the wire format — :class:`ClearingResult` round trips, the zoned
  encoding gains a golden-pinned ``clearing`` section, and pre-market
  goldens keep loading with ``clearing is None``.
"""

from __future__ import annotations

import json
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np
import pytest

from repro.aggregation.aggregate import AggregatedFlexOffer
from repro.api.registry import create_extractor
from repro.api.spec import MARKET_ENGINES as SPEC_MARKET_ENGINES
from repro.api.spec import MarketSpec, ScheduleSpec, ZoneSpec
from repro.errors import MarketError, SchedulingError, SpecError
from repro.flexoffer.io import zoned_result_from_dict, zoned_result_to_dict
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.market import (
    MARKET_ENGINES,
    ClearingResult,
    MarketConfig,
    clear_zones,
    price_offer,
    price_offers_batched,
    shift_utility,
)
from repro.market.clearing import BID_REASONS, BID_STATUSES, _slice_bounds
from repro.pipeline.fleet import FleetPipeline, fleet_zoned_target
from repro.scheduling.greedy import ScheduleConfig
from repro.scheduling.zones import (
    MarketZone,
    ZonedTarget,
    make_market_zones,
    schedule_zones,
)
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries
from repro.workloads import scenarios as w

GOLDEN = Path(__file__).parent / "data" / "golden"
START = datetime(2012, 3, 5)
RES = timedelta(minutes=15)


def flat_zone(
    name: str,
    level: float = 0.5,
    length: int = 8,
    floor: float = 0.05,
    cap: float = 0.15,
) -> MarketZone:
    axis = TimeAxis(start=START, resolution=RES, length=length)
    return MarketZone(
        name=name,
        target=TimeSeries.full(axis, level, name=f"{name}-target"),
        price_floor=floor,
        price_cap=cap,
    )


def make_offer(
    offer_id: str,
    slices=((1.0, 2.0), (0.5, 1.5)),
    flex_hours: float = 6.0,
    start_hour: float = 0.0,
    consumer: str = "",
    total_min: float | None = None,
    total_max: float | None = None,
) -> FlexOffer:
    earliest = START + timedelta(hours=start_hour)
    return FlexOffer(
        earliest_start=earliest,
        latest_start=earliest + timedelta(hours=flex_hours),
        slices=tuple(ProfileSlice(lo, hi) for lo, hi in slices),
        offer_id=offer_id,
        consumer_id=consumer,
        total_energy_min=total_min,
        total_energy_max=total_max,
    )


def make_aggregate(offer: FlexOffer) -> AggregatedFlexOffer:
    """A single-member aggregate that keeps the offer's own (stable) id."""
    return AggregatedFlexOffer(offer=offer, members=(offer,), member_offsets=(0,))


@pytest.fixture(scope="module")
def fleet_clearing_inputs():
    """Real fleet aggregates plus a priced three-zone target."""
    fleet = w.zoned_market_fleet()
    extractor = create_extractor("peak-based", flexible_share=0.05)
    result = FleetPipeline(extractor, chunk_size=3).run(fleet)
    zoned = fleet_zoned_target(fleet, seed=1, zones=3)
    return result.aggregates, zoned


# --------------------------------------------------------------------- #
# Configuration and spec layer
# --------------------------------------------------------------------- #


class TestMarketConfig:
    def test_defaults(self):
        config = MarketConfig()
        assert config.slices == 8
        assert config.coupling_kwh == 0.0
        assert config.engine == "vectorized"

    def test_validation(self):
        with pytest.raises(MarketError, match="slices must be >= 1"):
            MarketConfig(slices=0)
        with pytest.raises(MarketError, match="coupling_kwh must be >= 0"):
            MarketConfig(coupling_kwh=-1.0)
        with pytest.raises(MarketError, match="unknown market engine"):
            MarketConfig(engine="quantum")

    def test_schedule_config_rejects_non_config_market(self):
        with pytest.raises(SchedulingError, match="MarketConfig"):
            ScheduleConfig(market="vectorized")


class TestMarketSpec:
    def test_validation(self):
        with pytest.raises(SpecError, match="slices must be >= 1"):
            MarketSpec(slices=0)
        with pytest.raises(SpecError, match="coupling_kwh must be >= 0"):
            MarketSpec(coupling_kwh=-0.5)
        with pytest.raises(SpecError, match="engine must be one of"):
            MarketSpec(engine="quantum")

    def test_config_mirrors_spec(self):
        spec = MarketSpec(slices=4, coupling_kwh=2.5, engine="reference")
        config = spec.config()
        assert isinstance(config, MarketConfig)
        assert (config.slices, config.coupling_kwh, config.engine) == (
            4,
            2.5,
            "reference",
        )

    def test_market_requires_zones(self):
        with pytest.raises(SpecError, match="requires schedule.zones"):
            ScheduleSpec(market=MarketSpec())

    def test_engines_stay_in_sync_with_market_layer(self):
        # spec.py duplicates the tuple to stay import-light; this is the
        # promised sync guard.
        assert SPEC_MARKET_ENGINES == MARKET_ENGINES

    def test_wire_roundtrip_and_omission(self):
        zones = (ZoneSpec(name="a"), ZoneSpec(name="b"))
        without = ScheduleSpec(zones=zones)
        assert "market" not in without.to_dict()
        assert ScheduleSpec.from_dict(without.to_dict()) == without
        spec = ScheduleSpec(
            zones=zones, market=MarketSpec(slices=4, coupling_kwh=1.0)
        )
        payload = spec.to_dict()
        assert payload["market"] == {
            "slices": 4,
            "coupling_kwh": 1.0,
            "engine": "vectorized",
        }
        assert ScheduleSpec.from_dict(payload) == spec

    def test_unknown_market_key_raises(self):
        with pytest.raises(SpecError, match="pipeline.schedule.market"):
            MarketSpec.from_dict({"slices": 4, "spread": 1.0})


# --------------------------------------------------------------------- #
# Bid derivation: scalar reference vs batched, bitwise
# --------------------------------------------------------------------- #


class TestBidDerivation:
    def test_shift_utility_bounds(self):
        assert shift_utility(timedelta(0)) == 1.0
        assert shift_utility(timedelta(days=1)) == 0.5
        assert 0.0 < shift_utility(timedelta(days=30)) < 0.05

    def test_slice_prices_stay_inside_the_band(self):
        offer = make_offer("band", flex_hours=12.0)
        price, quantity, min_kwh, slice_prices = price_offer(offer, 0.05, 0.15)
        assert all(0.05 <= p <= 0.15 for p in slice_prices)
        assert 0.05 <= price <= 0.15
        assert 0.0 <= min_kwh <= quantity

    def test_tighter_offers_bid_higher(self):
        loose = make_offer("loose", slices=((0.1, 2.0),))
        tight = make_offer("tight", slices=((1.9, 2.0),))
        assert price_offer(tight, 0.05, 0.15)[0] > price_offer(loose, 0.05, 0.15)[0]

    def test_more_flexible_offers_bid_lower(self):
        rushed = make_offer("rushed", flex_hours=0.5)
        relaxed = make_offer("relaxed", flex_hours=36.0)
        assert (
            price_offer(relaxed, 0.05, 0.15)[0] < price_offer(rushed, 0.05, 0.15)[0]
        )

    def test_batched_bitwise_equals_scalar_on_fleet(self, fleet_clearing_inputs):
        aggregates, _ = fleet_clearing_inputs
        offers = [aggregate.offer for aggregate in aggregates]
        assert offers
        batched = price_offers_batched(offers, 0.03, 0.17)
        for i, offer in enumerate(offers):
            price, quantity, min_kwh, slice_prices = price_offer(offer, 0.03, 0.17)
            assert batched.prices[i] == price
            assert batched.quantities[i] == quantity
            assert batched.min_kwh[i] == min_kwh
            lo = batched.offsets[i]
            assert tuple(batched.slice_prices[lo : lo + len(offer.slices)]) == (
                slice_prices
            )

    def test_batched_bitwise_with_explicit_totals(self):
        offers = [
            make_offer("plain"),
            make_offer("clamped-up", total_min=3.0),
            make_offer("clamped-down", total_max=2.0),
            make_offer("tie", total_min=1.5, total_max=3.5),
        ]
        batched = price_offers_batched(offers, 0.05, 0.15)
        for i, offer in enumerate(offers):
            price, quantity, min_kwh, _ = price_offer(offer, 0.05, 0.15)
            assert batched.prices[i] == price
            assert batched.quantities[i] == quantity
            assert batched.min_kwh[i] == min_kwh

    def test_profile_arrays_fast_path_is_bitwise_identical(
        self, fleet_clearing_inputs
    ):
        aggregates, _ = fleet_clearing_inputs
        offers = [aggregate.offer for aggregate in aggregates]
        arrays = [aggregate.profile_bounds_arrays for aggregate in aggregates]
        plain = price_offers_batched(offers, 0.03, 0.17)
        cached = price_offers_batched(offers, 0.03, 0.17, profile_arrays=arrays)
        for field in ("prices", "quantities", "min_kwh", "curve_eur"):
            assert np.array_equal(getattr(plain, field), getattr(cached, field))

    def test_empty_batch(self):
        batched = price_offers_batched([], 0.05, 0.15)
        assert batched.prices.size == 0
        assert batched.offsets.size == 0


# --------------------------------------------------------------------- #
# Clearing mechanics on handcrafted markets
# --------------------------------------------------------------------- #


def _clear_single_zone(zone, offers, **config_kwargs):
    zoned = ZonedTarget(zones=(zone,))
    aggregates = [make_aggregate(offer) for offer in offers]
    return clear_zones(
        aggregates, zoned, MarketConfig(slices=2, engine="reference", **config_kwargs)
    )


class TestClearingMechanics:
    def test_slice_bounds_partition_the_axis(self):
        assert _slice_bounds(8, 2) == [0, 4, 8]
        assert _slice_bounds(7, 3) == [0, 2, 4, 7]
        with pytest.raises(MarketError, match="exceed target intervals"):
            _slice_bounds(4, 8)

    def test_rich_supply_accepts_everything(self):
        zone = flat_zone("a", level=50.0)
        result = _clear_single_zone(zone, [make_offer("x"), make_offer("y")])
        assert {o.status for o in result.outcomes} == {"accepted"}
        assert result.payments_eur == pytest.approx(result.revenue_eur)

    def test_no_supply_rejects_consuming_bids(self):
        zone = flat_zone("dead", level=0.0)
        result = _clear_single_zone(zone, [make_offer("x")])
        (outcome,) = result.outcomes
        assert outcome.status == "rejected"
        assert outcome.reason == "no-supply"
        assert outcome.payment_eur == 0.0

    def test_saturated_zone_prices_out_the_cheapest_bid(self):
        # Supply 2 kWh/slice; the tight (expensive) bid clears, the loose
        # (cheap) one cannot climb the ramp behind it.
        zone = flat_zone("scarce", level=0.5)
        tight = make_offer("tight", slices=((1.9, 2.0),), flex_hours=1.0)
        loose = make_offer("loose", slices=((0.1, 2.0),), flex_hours=36.0)
        result = _clear_single_zone(zone, [tight, loose])
        by_offer = result.by_offer()
        assert by_offer["tight"].cleared
        assert not by_offer["loose"].cleared
        assert by_offer["loose"].reason in ("priced-out", "lumpy")

    def test_lumpy_rejection_respects_minimum_energy(self):
        # The marginal bid meets the ramp at a partial quantity below its
        # minimum energy: all-or-nothing, so it is rejected as lumpy.
        zone = flat_zone("lumpy", level=0.55)
        bid = make_offer("rigid", slices=((2.1, 2.2), (2.1, 2.2)), flex_hours=0.5)
        result = _clear_single_zone(zone, [bid])
        (outcome,) = result.outcomes
        assert outcome.status == "rejected"
        assert outcome.reason == "lumpy"

    def test_partial_acceptance_settles_at_the_uniform_price(self):
        zone = flat_zone("partial", level=0.55)
        bid = make_offer("flexible", slices=((0.0, 2.2), (0.0, 2.2)), flex_hours=0.5)
        result = _clear_single_zone(zone, [bid])
        (outcome,) = result.outcomes
        assert outcome.status == "partial"
        assert 0.0 < outcome.quantity_kwh < 4.4
        assert outcome.payment_eur == pytest.approx(
            outcome.quantity_kwh * result.zones[0].slice_prices[0]
        )

    def test_production_offers_pass_through(self):
        zone = flat_zone("prod", level=0.5)
        production = make_offer("wind", slices=((-3.0, 0.0), (-2.0, 0.0)))
        result = _clear_single_zone(zone, [production, make_offer("load")])
        outcome = result.by_offer()["wind"]
        assert outcome.status == "accepted"
        assert outcome.reason == "pass-through"
        assert outcome.quantity_kwh == 0.0
        assert outcome.payment_eur == 0.0

    def test_statuses_and_reasons_stay_enumerated(self, fleet_clearing_inputs):
        aggregates, zoned = fleet_clearing_inputs
        result = clear_zones(
            aggregates, zoned, MarketConfig(slices=6, coupling_kwh=2.0)
        )
        assert {o.status for o in result.outcomes} <= set(BID_STATUSES)
        assert {o.reason for o in result.outcomes} <= set(BID_REASONS)
        assert len(result.outcomes) == len(aggregates)

    def test_unpriced_zone_is_refused(self):
        axis = TimeAxis(start=START, resolution=RES, length=8)
        unpriced = MarketZone(name="flat", target=TimeSeries.full(axis, 1.0))
        assert not unpriced.priced
        with pytest.raises(MarketError, match="cannot clear unpriced zones: flat"):
            _clear_single_zone(unpriced, [make_offer("x")])


class TestSpillPass:
    def _two_zone_market(self):
        # zone-a is starved (one expensive local bid saturates it), zone-b
        # has room; the rejected cheap bid can only clear by migrating.
        scarce = flat_zone("a", level=0.5)
        roomy = flat_zone("b", level=50.0, floor=0.02, cap=0.08)
        tight = make_offer("tight", slices=((1.9, 2.0),), flex_hours=1.0, consumer="hh-a")
        loose = make_offer("loose", slices=((0.1, 2.0),), flex_hours=36.0, consumer="hh-a2")
        zoned = ZonedTarget(
            zones=(scarce, roomy),
            assignment={"hh-a": "a", "hh-a2": "a"},
        )
        aggregates = [make_aggregate(tight), make_aggregate(loose)]
        return zoned, aggregates

    def test_zero_coupling_disables_spill(self):
        zoned, aggregates = self._two_zone_market()
        result = clear_zones(
            aggregates, zoned, MarketConfig(slices=2, coupling_kwh=0.0)
        )
        assert result.migrated == ()
        assert not result.by_offer()["loose"].cleared

    def test_rejected_bid_spills_to_the_adjacent_zone(self):
        zoned, aggregates = self._two_zone_market()
        result = clear_zones(
            aggregates, zoned, MarketConfig(slices=2, coupling_kwh=10.0)
        )
        outcome = result.by_offer()["loose"]
        assert outcome.migrated
        assert outcome.home_zone == "a"
        assert outcome.zone == "b"
        assert outcome.cleared
        # The import settles in the receiving zone's books.
        zone_b = next(z for z in result.zones if z.zone == "b")
        assert any(o.offer_id == "loose" for o in zone_b.outcomes)

    def test_coupling_capacity_bounds_the_import(self):
        zoned, aggregates = self._two_zone_market()
        result = clear_zones(
            aggregates, zoned, MarketConfig(slices=2, coupling_kwh=0.5)
        )
        outcome = result.by_offer()["loose"]
        if outcome.migrated:
            assert outcome.quantity_kwh <= 0.5 + 1e-12


# --------------------------------------------------------------------- #
# Engine equivalence and economic invariants on a real fleet
# --------------------------------------------------------------------- #


def _decisions(result: ClearingResult):
    return sorted(
        (o.offer_id, o.home_zone, o.zone, o.slice_index, o.status, o.reason)
        for o in result.outcomes
    )


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def both(self, fleet_clearing_inputs):
        aggregates, zoned = fleet_clearing_inputs
        return {
            engine: clear_zones(
                aggregates,
                zoned,
                MarketConfig(slices=6, coupling_kwh=2.0, engine=engine),
            )
            for engine in MARKET_ENGINES
        }

    def test_acceptance_sets_identical(self, both):
        assert _decisions(both["reference"]) == _decisions(both["vectorized"])

    def test_settlements_bitwise_identical(self, both):
        ref = {
            o.offer_id: (o.quantity_kwh, o.payment_eur, o.price)
            for o in both["reference"].outcomes
        }
        vec = {
            o.offer_id: (o.quantity_kwh, o.payment_eur, o.price)
            for o in both["vectorized"].outcomes
        }
        assert ref == vec

    def test_prices_and_cleared_energy_bitwise_identical(self, both):
        for ref_zone, vec_zone in zip(
            both["reference"].zones, both["vectorized"].zones
        ):
            assert ref_zone.slice_prices == vec_zone.slice_prices
            assert ref_zone.cleared_kwh == vec_zone.cleared_kwh

    def test_welfare_reconciles(self, both):
        ref, vec = both["reference"], both["vectorized"]
        assert vec.welfare_eur == pytest.approx(ref.welfare_eur, rel=1e-9)
        assert vec.consumer_surplus_eur == pytest.approx(
            ref.consumer_surplus_eur, rel=1e-9
        )

    def test_budget_balance(self, both):
        for result in both.values():
            assert result.payments_eur == pytest.approx(
                result.revenue_eur, rel=1e-12
            )
            for zone in result.zones:
                for index, price in enumerate(zone.slice_prices):
                    paid = sum(
                        o.payment_eur
                        for o in zone.outcomes
                        if o.cleared and o.slice_index == index
                    )
                    assert paid == pytest.approx(
                        price * zone.cleared_kwh[index], abs=1e-9
                    )

    def test_individual_rationality(self, both):
        for result in both.values():
            for outcome in result.outcomes:
                if outcome.cleared:
                    assert (
                        outcome.payment_eur
                        <= outcome.price * outcome.quantity_kwh * (1 + 1e-9) + 1e-12
                    )

    def test_surpluses_are_nonnegative(self, both):
        result = both["vectorized"]
        assert result.consumer_surplus_eur >= -1e-9
        assert result.producer_surplus_eur >= -1e-9
        assert result.welfare_eur > 0.0


# --------------------------------------------------------------------- #
# Scheduling integration
# --------------------------------------------------------------------- #


class TestScheduleIntegration:
    @pytest.fixture(scope="class")
    def cleared_schedule(self, fleet_clearing_inputs):
        aggregates, zoned = fleet_clearing_inputs
        config = ScheduleConfig(
            engine="incremental",
            market=MarketConfig(slices=6, coupling_kwh=2.0),
        )
        return aggregates, zoned, schedule_zones(aggregates, zoned, config)

    def test_clearing_is_attached_and_summarised(self, cleared_schedule):
        _, _, result = cleared_schedule
        assert result.clearing is not None
        summary = result.summary()
        assert summary["market_bids"] == summary["market_accepted"] + summary[
            "market_partial"
        ] + summary["market_rejected"]
        assert summary["market_welfare_eur"] == pytest.approx(
            result.clearing.welfare_eur
        )

    def test_rejected_bids_surface_as_unplaced_in_their_home_zone(
        self, cleared_schedule
    ):
        aggregates, _, result = cleared_schedule
        outcomes = result.clearing.by_offer()
        unplaced_by_zone = {
            zone.name: {offer.offer_id for offer in zone_result.unplaced}
            for zone, zone_result in zip(result.zones, result.results)
        }
        for aggregate in aggregates:
            outcome = outcomes[aggregate.offer.offer_id]
            if not outcome.cleared:
                assert outcome.offer_id in unplaced_by_zone[outcome.home_zone]

    def test_cleared_bids_are_placed_in_their_clearing_zone(self, cleared_schedule):
        aggregates, _, result = cleared_schedule
        outcomes = result.clearing.by_offer()
        migrated = [o for o in outcomes.values() if o.migrated and o.cleared]
        handled_by_zone = {
            zone.name: {s.offer.offer_id for s in zone_result.schedules}
            | {offer.offer_id for offer in zone_result.unplaced}
            for zone, zone_result in zip(result.zones, result.results)
        }
        for outcome in migrated:
            assert outcome.offer_id in handled_by_zone[outcome.zone]

    def test_unpriced_zone_error_message_is_pinned(self, fleet_clearing_inputs):
        aggregates, _ = fleet_clearing_inputs
        axis = TimeAxis(start=START, resolution=RES, length=8)
        zoned = ZonedTarget(
            zones=(
                MarketZone(name="flat", target=TimeSeries.full(axis, 1.0)),
                flat_zone("priced"),
            )
        )
        config = ScheduleConfig(market=MarketConfig(slices=2))
        with pytest.raises(SchedulingError) as excinfo:
            schedule_zones(aggregates[:1], zoned, config)
        assert str(excinfo.value) == (
            "market clearing requested but zone(s) flat have no price band "
            "(price_floor == price_cap == 0.0); set price_floor/price_cap on "
            "the zone or drop the market config"
        )

    def test_make_market_zones_are_priced(self):
        axis = TimeAxis(start=START, resolution=RES, length=96)
        zones = make_market_zones(axis, 3, seed=7, zone_kwh=10.0)
        assert all(zone.priced for zone in zones)
        assert [zone.name for zone in zones] == ["zone-a", "zone-b", "zone-c"]


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #


def _golden_market_run():
    """A fully deterministic zoned run with clearing, for the golden pin."""
    zones = (
        flat_zone("north", level=0.5, floor=0.05, cap=0.15),
        flat_zone("south", level=4.0, floor=0.02, cap=0.08),
    )
    zoned = ZonedTarget(
        zones=zones, assignment={"hh-north": "north", "hh-south": "south"}
    )
    offers = [
        make_offer("golden-tight", slices=((1.9, 2.0),), flex_hours=1.0, consumer="hh-north"),
        make_offer("golden-loose", slices=((0.1, 2.0),), flex_hours=36.0, consumer="hh-north"),
        make_offer("golden-south", slices=((0.5, 1.0), (0.5, 1.0)), consumer="hh-south"),
    ]
    aggregates = [make_aggregate(offer) for offer in offers]
    config = ScheduleConfig(
        engine="incremental",
        market=MarketConfig(slices=2, coupling_kwh=3.0, engine="reference"),
    )
    return schedule_zones(aggregates, zoned, config)


class TestWireFormat:
    def test_clearing_result_roundtrip(self, fleet_clearing_inputs):
        aggregates, zoned = fleet_clearing_inputs
        result = clear_zones(
            aggregates, zoned, MarketConfig(slices=6, coupling_kwh=2.0)
        )
        payload = result.to_dict()
        assert ClearingResult.from_dict(payload).to_dict() == payload
        assert payload["version"] == 1

    def test_unsupported_clearing_version_raises(self):
        payload = _golden_market_run().clearing.to_dict()
        payload["version"] = 99
        with pytest.raises(MarketError, match="unsupported clearing version"):
            ClearingResult.from_dict(payload)

    def test_zoned_encoding_with_clearing_matches_golden(self):
        encoded = zoned_result_to_dict(_golden_market_run())
        golden = json.loads((GOLDEN / "zoned_result_market_golden.json").read_text())
        assert encoded == golden

    def test_zoned_encoding_with_clearing_roundtrips(self):
        result = _golden_market_run()
        encoded = zoned_result_to_dict(result)
        decoded = zoned_result_from_dict(encoded)
        assert decoded.clearing is not None
        assert zoned_result_to_dict(decoded) == encoded

    def test_pre_market_golden_loads_with_no_clearing(self):
        golden = json.loads((GOLDEN / "zoned_result_golden.json").read_text())
        decoded = zoned_result_from_dict(golden)
        assert decoded.clearing is None
        assert "clearing" not in zoned_result_to_dict(decoded)

"""Property test: batched fleet execution == per-household sequential.

The core contract of :class:`repro.pipeline.FleetPipeline` is that
batching is pure execution detail — for *any* fleet and any chunking the
offers must be exactly those of the plain sequential loop.  Hypothesis
drives random fleet shapes, seeds and chunk sizes through both paths.
"""

from __future__ import annotations

from datetime import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extraction import FlexOfferParams, FrequencyBasedExtractor, PeakBasedExtractor
from repro.pipeline import FleetPipeline, offers_equivalent, run_sequential
from repro.simulation.dataset import generate_fleet

START = datetime(2012, 3, 5)


@settings(max_examples=12, deadline=None)
@given(
    n_households=st.integers(min_value=1, max_value=4),
    days=st.integers(min_value=1, max_value=2),
    fleet_seed=st.integers(min_value=0, max_value=2**16),
    pipeline_seed=st.integers(min_value=0, max_value=2**16),
    chunk_size=st.integers(min_value=1, max_value=5),
)
def test_batched_equals_sequential_random_fleets(
    n_households, days, fleet_seed, pipeline_seed, chunk_size
):
    fleet = generate_fleet(n_households, START, days, seed=fleet_seed)
    extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
    batched = FleetPipeline(
        extractor, chunk_size=chunk_size, seed=pipeline_seed
    ).run(fleet)
    sequential = run_sequential(fleet, extractor, seed=pipeline_seed)
    assert offers_equivalent(batched.offers, sequential.offers)
    assert [h.household_id for h in batched.households] == [
        t.config.household_id for t in fleet.traces
    ]


@settings(max_examples=4, deadline=None)
@given(
    fleet_seed=st.integers(min_value=0, max_value=2**16),
    chunk_size=st.integers(min_value=1, max_value=3),
)
def test_batched_equals_sequential_appliance_level(fleet_seed, chunk_size):
    # The appliance-level path exercises the detect/formulate split and the
    # vectorized matcher; keep the fleet small so the property stays quick.
    fleet = generate_fleet(2, START, 1, seed=fleet_seed)
    extractor = FrequencyBasedExtractor()
    batched = FleetPipeline(extractor, chunk_size=chunk_size).run(fleet)
    sequential = run_sequential(fleet, extractor)
    assert offers_equivalent(batched.offers, sequential.offers)

"""``aggregate_stream`` ≡ batch grouping+aggregation, bitwise.

The streaming fold must replay the batch path exactly — profile floats,
member offsets, minted ``agg`` ids — given the same offers, parameters and
grid epoch.  Fast cases run on synthetic offers and the cached test fleet;
the tier-2 sweep proves the contract on every conformance scenario.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import (
    GroupingParams,
    aggregate_all,
    aggregate_stream,
    group_offers,
)
from repro.api.registry import create_extractor
from repro.conformance.matrix import scenario_matrix
from repro.errors import AggregationError
from repro.flexoffer.model import FlexOffer, ProfileSlice, offer_id_scope
from repro.pipeline.fleet import run_sequential
from repro.timeseries.axis import FIFTEEN_MINUTES
from repro.workloads.scenarios import SCENARIO_START


def make_offer(
    start_intervals: int, n_slices: int, flex_intervals: int, seed: int
) -> FlexOffer:
    rng = np.random.default_rng(seed)
    mins = rng.uniform(0.1, 0.4, n_slices)
    return FlexOffer(
        earliest_start=SCENARIO_START + start_intervals * FIFTEEN_MINUTES,
        latest_start=SCENARIO_START + (start_intervals + flex_intervals) * FIFTEEN_MINUTES,
        slices=tuple(
            ProfileSlice(float(lo), float(lo * rng.uniform(1.1, 2.0))) for lo in mins
        ),
        resolution=FIFTEEN_MINUTES,
        offer_id=f"syn-{seed}",
    )


def batch_and_stream(offers, params=None, epoch=None, keep_members=True):
    """Both paths under identical id scopes; returns (batch, streamed)."""
    if epoch is None:
        epoch = min(o.earliest_start for o in offers)
    with offer_id_scope("fleet"):
        batch = aggregate_all(group_offers(list(offers), params, epoch=epoch))
    with offer_id_scope("fleet"):
        streamed = list(
            aggregate_stream(offers, params, epoch=epoch, keep_members=keep_members)
        )
    return batch, streamed


class TestStreamEquivalence:
    def test_fleet_extraction_offers_bitwise(self, fleet):
        result = run_sequential(fleet, extractor=create_extractor("basic"), seed=0)
        batch, streamed = batch_and_stream(result.offers)
        assert streamed == batch

    def test_group_splitting_matches_insertion_order(self):
        # 10 offers in one grid cell, split at 3: splits [0:3][3:6][6:9][9:].
        offers = [make_offer(i % 2, 4, 20, seed=i) for i in range(10)]
        params = GroupingParams(max_group_size=3)
        batch, streamed = batch_and_stream(offers, params)
        assert streamed == batch
        assert [a.size for a in streamed] == [3, 3, 3, 1]

    def test_out_of_order_starts_rebase_exactly(self):
        # Same cell, arrival order runs *backwards* in time, so the stream
        # re-anchors the accumulator repeatedly; sums must not drift.
        offers = [make_offer(7 - i, 3, 30, seed=100 + i) for i in range(8)]
        epoch = min(o.earliest_start for o in offers)
        params = GroupingParams(start_tolerance=timedelta(hours=6))
        batch, streamed = batch_and_stream(offers, params, epoch=epoch)
        assert streamed == batch
        assert streamed[0].member_offsets == batch[0].member_offsets

    def test_default_epoch_is_first_offer(self):
        offers = [make_offer(5 + i, 3, 20, seed=200 + i) for i in range(6)]
        with offer_id_scope("fleet"):
            anchored = aggregate_all(
                group_offers(offers, epoch=offers[0].earliest_start)
            )
        with offer_id_scope("fleet"):
            streamed = list(aggregate_stream(offers))
        assert streamed == anchored

    def test_keep_members_false_same_offers_no_members(self):
        offers = [make_offer(i, 4, 25, seed=300 + i) for i in range(12)]
        batch, streamed = batch_and_stream(offers, keep_members=False)
        assert [a.offer for a in streamed] == [a.offer for a in batch]
        assert all(a.members == () and a.member_offsets == () for a in streamed)

    def test_accepts_a_pure_generator(self):
        def generate():
            for i in range(9):
                yield make_offer(i % 3, 3, 18, seed=400 + i)

        epoch = SCENARIO_START
        with offer_id_scope("fleet"):
            batch = aggregate_all(group_offers(list(generate()), epoch=epoch))
        with offer_id_scope("fleet"):
            streamed = list(aggregate_stream(generate(), epoch=epoch))
        assert streamed == batch

    def test_misaligned_offer_raises(self):
        good = make_offer(0, 3, 20, seed=500)
        from dataclasses import replace

        bad = replace(
            make_offer(0, 3, 20, seed=501),
            earliest_start=SCENARIO_START + timedelta(minutes=7),
            latest_start=SCENARIO_START + timedelta(minutes=7) + 20 * FIFTEEN_MINUTES,
        )
        with pytest.raises(AggregationError, match="not grid-aligned"):
            list(aggregate_stream([good, bad], epoch=SCENARIO_START))

    def test_empty_stream_yields_nothing(self):
        assert list(aggregate_stream([])) == []


class TestGridBucketFloor:
    """The grouping grid must floor, not truncate, around the epoch.

    ``int()`` truncates toward zero, so offers in ``(-tol, 0)`` and
    ``[0, tol)`` used to share bucket 0 — one double-width cell straddling
    the epoch.  Offers *before* the epoch are routine whenever the epoch is
    taken from a later batch (or a session's first replan sees a stale
    household), so the bucket arithmetic must be a true floor.
    """

    def test_pre_epoch_offers_get_their_own_bucket(self):
        params = GroupingParams(start_tolerance=timedelta(hours=6))
        # One hour before the epoch and one hour after: distinct buckets
        # (-1 and 0), NOT the single double-width bucket truncation made.
        before = make_offer(-4, 3, 30, seed=600)
        after = make_offer(4, 3, 30, seed=601)
        groups = group_offers([before, after], params, epoch=SCENARIO_START)
        assert len(groups) == 2

    def test_pre_epoch_stream_matches_batch_bitwise(self):
        params = GroupingParams(start_tolerance=timedelta(hours=6))
        offers = [make_offer(i - 6, 3, 30, seed=620 + i) for i in range(12)]
        batch, streamed = batch_and_stream(
            offers, params, epoch=SCENARIO_START
        )
        assert streamed == batch
        assert len(batch) >= 2  # epoch really is straddled

    def test_exactly_on_epoch_lands_in_bucket_zero(self):
        params = GroupingParams(start_tolerance=timedelta(hours=6))
        on_epoch = make_offer(0, 3, 30, seed=640)
        just_before = make_offer(-1, 3, 30, seed=641)
        groups = group_offers([on_epoch, just_before], params, epoch=SCENARIO_START)
        assert len(groups) == 2


class TestMemberOffsetPairing:
    """Re-anchoring must keep each member paired with *its* offset.

    The batch path keeps members in insertion order (it never sorts), so
    the stream's prepend-and-shift re-anchor must preserve the pairing
    ``offset_i = (member_i.earliest_start - group_start) / resolution``
    for the original arrival order — this pins the invariant the
    N-to-1 disaggregation contract silently relies on.
    """

    def test_offsets_point_at_their_own_members(self):
        # Backwards arrival re-anchors repeatedly; every member's offset
        # must still locate that member's own start inside the aggregate.
        offers = [make_offer(9 - i, 3, 40, seed=700 + i) for i in range(10)]
        params = GroupingParams(start_tolerance=timedelta(hours=6))
        _, streamed = batch_and_stream(offers, params)
        assert streamed  # the workload must aggregate something
        for aggregate in streamed:
            assert len(aggregate.members) == len(aggregate.member_offsets)
            for member, offset in zip(aggregate.members, aggregate.member_offsets):
                delta = member.earliest_start - aggregate.offer.earliest_start
                assert delta == offset * member.resolution

    def test_pairing_matches_batch_in_arrival_order(self):
        offers = [make_offer((i * 5) % 11, 4, 40, seed=720 + i) for i in range(11)]
        params = GroupingParams(start_tolerance=timedelta(hours=6))
        batch, streamed = batch_and_stream(offers, params)
        batch_pairs = [
            [(m.offer_id, off) for m, off in zip(a.members, a.member_offsets)]
            for a in batch
        ]
        stream_pairs = [
            [(m.offer_id, off) for m, off in zip(a.members, a.member_offsets)]
            for a in streamed
        ]
        assert stream_pairs == batch_pairs


class TestEpochPlacementProperty:
    """Hypothesis: stream ≡ batch bitwise wherever the epoch falls.

    The epoch may sit *after* some offers (a later batch's first start, a
    session replanning stale households), driving the grid into negative
    buckets — the regression surface of the ``int()``-truncation bug.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        starts=st.lists(
            st.integers(-30, 30), min_size=2, max_size=10
        ),
        epoch_intervals=st.integers(-10, 10),
        tolerance_hours=st.sampled_from([1, 3, 6]),
    )
    def test_any_epoch_stream_matches_batch(
        self, starts, epoch_intervals, tolerance_hours
    ):
        offers = [
            make_offer(start, 3, 30, seed=800 + i)
            for i, start in enumerate(starts)
        ]
        params = GroupingParams(
            start_tolerance=timedelta(hours=tolerance_hours)
        )
        epoch = SCENARIO_START + epoch_intervals * FIFTEEN_MINUTES
        batch, streamed = batch_and_stream(offers, params, epoch=epoch)
        assert streamed == batch


@pytest.mark.tier2
class TestStreamEquivalenceMatrix:
    """The bitwise contract over every conformance scenario's offers."""

    @pytest.mark.parametrize(
        "scenario", scenario_matrix(), ids=lambda s: s.name
    )
    def test_scenario_offers_bitwise(self, scenario):
        try:
            traces = list(scenario.build())
        except TypeError:
            pytest.skip(f"scenario {scenario.name} has no iterable fleet")
        result = run_sequential(
            traces, extractor=create_extractor("basic"), seed=scenario.seed
        )
        if not result.offers:
            pytest.skip(f"scenario {scenario.name} extracted no offers")
        batch, streamed = batch_and_stream(result.offers)
        assert streamed == batch

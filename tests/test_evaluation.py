"""Tests for ground-truth scoring, realism statistics and the comparison."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.evaluation.comparison import (
    collect_offers,
    compare_on_traces,
    default_suite,
    input_series_for,
)
from repro.evaluation.groundtruth import energy_overlap, match_activations
from repro.evaluation.realism import (
    format_table,
    offers_to_expected_series,
    peak_energy_fraction,
    realism_report,
)
from repro.extraction.basic import BasicExtractor
from repro.extraction.frequency_based import FrequencyBasedExtractor
from repro.extraction.params import FlexOfferParams
from repro.extraction.peaks import PeakBasedExtractor
from repro.extraction.random_baseline import RandomBaselineExtractor
from repro.simulation.activations import Activation
from repro.timeseries.axis import axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


def act(appliance: str, hours: float, energy: float = 1.0) -> Activation:
    return Activation(
        appliance, START + timedelta(hours=hours), energy, timedelta(hours=1), True
    )


class TestMatchActivations:
    def test_perfect_match(self):
        truth = [act("a", 1.0), act("b", 5.0)]
        report = match_activations(truth, truth)
        assert report.precision == 1.0 and report.recall == 1.0 and report.f1 == 1.0
        assert report.start_error_minutes == 0.0

    def test_tolerance_window(self):
        truth = [act("a", 1.0)]
        near = [act("a", 1.25)]  # 15 minutes off
        far = [act("a", 3.0)]
        assert match_activations(near, truth).true_positives == 1
        assert match_activations(far, truth).true_positives == 0

    def test_appliance_name_must_match(self):
        truth = [act("a", 1.0)]
        wrong = [act("b", 1.0)]
        assert match_activations(wrong, truth).true_positives == 0
        relaxed = match_activations(wrong, truth, same_appliance=False)
        assert relaxed.true_positives == 1

    def test_duplicates_count_as_false_positives(self):
        truth = [act("a", 1.0)]
        double = [act("a", 1.0), act("a", 1.1)]
        report = match_activations(double, truth)
        assert report.true_positives == 1
        assert report.false_positives == 1

    def test_empty_cases(self):
        assert match_activations([], []).f1 == 1.0
        report = match_activations([], [act("a", 1.0)])
        assert report.recall == 0.0 and report.precision == 1.0


class TestEnergyOverlap:
    def test_perfect_overlap(self):
        axis = axis_for_days(START, 1)
        series = TimeSeries(axis, np.random.default_rng(0).uniform(0, 1, 96))
        overlap = energy_overlap(series, series)
        assert overlap.precision == pytest.approx(1.0)
        assert overlap.recall == pytest.approx(1.0)

    def test_disjoint_overlap(self):
        axis = axis_for_days(START, 1)
        a = np.zeros(96); a[:10] = 1.0
        b = np.zeros(96); b[50:60] = 1.0
        overlap = energy_overlap(TimeSeries(axis, a), TimeSeries(axis, b))
        assert overlap.overlap_kwh == 0.0
        assert overlap.f1 == 0.0

    def test_partial(self):
        axis = axis_for_days(START, 1)
        a = np.zeros(96); a[:20] = 1.0
        b = np.zeros(96); b[10:20] = 1.0
        overlap = energy_overlap(TimeSeries(axis, a), TimeSeries(axis, b))
        assert overlap.precision == pytest.approx(0.5)
        assert overlap.recall == pytest.approx(1.0)


class TestRealism:
    def test_offers_to_expected_series(self, paper_day, rng):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        expected = offers_to_expected_series(result.offers, paper_day.series.axis)
        assert expected.total() == pytest.approx(result.extracted_energy, rel=1e-6)

    def test_peak_energy_fraction_bounds(self, paper_day, rng):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        expected = offers_to_expected_series(result.offers, paper_day.series.axis)
        fraction = peak_energy_fraction(expected, paper_day.series)
        assert 0.9 <= fraction <= 1.0  # by construction on the peak

    def test_realism_report_fields(self, paper_day, rng):
        extractor = BasicExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(paper_day.series, rng)
        report = realism_report(result)
        row = report.row()
        assert row["extractor"] == "basic"
        assert row["offers"] == 4
        assert 0.0 <= row["share"] <= 1.0

    def test_format_table(self):
        rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": "y"}]
        text = format_table(rows)
        assert "a" in text and "bb" in text and "22" in text
        assert format_table([]) == "(no rows)"


class TestComparison:
    def test_input_series_resolution_routing(self, fleet):
        trace = fleet.traces[0]
        from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE

        assert input_series_for(BasicExtractor(), trace).axis.resolution == FIFTEEN_MINUTES
        assert input_series_for(FrequencyBasedExtractor(), trace).axis.resolution == ONE_MINUTE

    def test_default_suite_names(self):
        names = [e.name for e in default_suite()]
        assert names == [
            "random-baseline", "basic", "peak-based", "frequency-based", "schedule-based",
        ]

    def test_comparison_reproduces_paper_ranking(self, fleet):
        """§6: appliance-level > peak-based > basic > random on realism."""
        result = compare_on_traces(fleet.traces[:3])
        rows = {r["extractor"]: r for r in result.mean_rows()}
        # Ground-truth F1 ordering (the decisive realism criterion).
        assert rows["frequency-based"]["gt_f1"] > rows["peak-based"]["gt_f1"]
        assert rows["peak-based"]["gt_f1"] > rows["random-baseline"]["gt_f1"]
        # Correlation with consumption: shape-aware approaches beat random.
        assert rows["peak-based"]["corr_consumption"] > rows["random-baseline"]["corr_consumption"]
        # Random is uniformly dispersed (the paper's §1 criticism).
        assert rows["random-baseline"]["dispersion"] > rows["peak-based"]["dispersion"]
        # Only the random baseline violates conservation.
        assert rows["random-baseline"]["conservation_err"] > 1.0
        assert rows["basic"]["conservation_err"] < 1e-6

    def test_collect_offers(self, fleet):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        offers = collect_offers(fleet.traces[:2], extractor)
        assert offers
        assert all(o.source == "peak-based" for o in offers)

    def test_random_baseline_not_conservative(self, fleet):
        extractor = RandomBaselineExtractor()
        result = extractor.extract(fleet.traces[0].metered(), np.random.default_rng(0))
        assert result.extras["conservative"] is False
        assert result.modified == result.original
        assert result.energy_conservation_error() > 0

"""Unit tests for :mod:`repro.simulation.weather` and :mod:`repro.simulation.res`."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.simulation.res import WindFarm, simulate_wind_production, surplus_series
from repro.simulation.weather import TemperatureModel, WindModel
from repro.timeseries.axis import axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


class TestTemperature:
    def test_generate_reasonable_range(self):
        axis = axis_for_days(START, 7)
        series = TemperatureModel().generate(axis, np.random.default_rng(0))
        assert -25 < series.min() and series.max() < 40

    def test_seasonal_difference(self):
        winter = axis_for_days(datetime(2012, 1, 15), 5)
        summer = axis_for_days(datetime(2012, 7, 15), 5)
        model = TemperatureModel(noise_std_c=0.0)
        rng = np.random.default_rng(0)
        t_winter = model.generate(winter, rng).mean()
        t_summer = model.generate(summer, rng).mean()
        assert t_summer - t_winter > 8.0

    def test_diurnal_cycle(self):
        axis = axis_for_days(START, 2)
        model = TemperatureModel(noise_std_c=0.0)
        series = model.generate(axis, np.random.default_rng(0))
        profile = series.daily_profile()
        afternoon = profile[int(15 * 4)]  # 15:00
        predawn = profile[int(4 * 4)]     # 04:00
        assert afternoon > predawn

    def test_validation(self):
        with pytest.raises(ValidationError):
            TemperatureModel(noise_persistence=1.0)
        with pytest.raises(ValidationError):
            TemperatureModel(noise_std_c=-1.0)

    def test_deterministic(self):
        axis = axis_for_days(START, 2)
        a = TemperatureModel().generate(axis, np.random.default_rng(5))
        b = TemperatureModel().generate(axis, np.random.default_rng(5))
        assert a == b


class TestWind:
    def test_nonnegative(self):
        axis = axis_for_days(START, 14)
        speed = WindModel().generate(axis, np.random.default_rng(1))
        assert speed.is_nonnegative()

    def test_autocorrelated(self):
        axis = axis_for_days(START, 14)
        speed = WindModel().generate(axis, np.random.default_rng(1))
        from repro.timeseries.stats import autocorrelation

        assert autocorrelation(speed, 4) > 0.7  # persistent over an hour

    def test_validation(self):
        with pytest.raises(ValidationError):
            WindModel(mean_speed_ms=0.0)
        with pytest.raises(ValidationError):
            WindModel(noise_persistence=1.5)


class TestWindFarm:
    def test_power_curve_regions(self):
        farm = WindFarm(rated_power_kw=1000.0, cut_in_ms=3, rated_ms=12, cut_out_ms=25)
        v = np.array([0.0, 2.9, 3.0, 8.0, 12.0, 20.0, 25.0, 30.0])
        p = farm.power_kw(v)
        assert p[0] == 0.0 and p[1] == 0.0          # below cut-in
        assert p[2] == pytest.approx(0.0, abs=1e-9)  # at cut-in
        assert 0.0 < p[3] < 1000.0                   # cubic region
        assert p[4] == pytest.approx(1000.0)         # rated
        assert p[5] == pytest.approx(1000.0)         # flat region
        assert p[6] == 0.0 and p[7] == 0.0           # cut-out

    def test_cubic_monotonicity(self):
        farm = WindFarm()
        v = np.linspace(farm.cut_in_ms, farm.rated_ms, 50)
        p = farm.power_kw(v)
        assert (np.diff(p) >= -1e-9).all()

    def test_validation(self):
        with pytest.raises(ValidationError):
            WindFarm(rated_power_kw=-5)
        with pytest.raises(ValidationError):
            WindFarm(cut_in_ms=15, rated_ms=12)

    def test_production_energy_units(self):
        axis = axis_for_days(START, 1)
        speed = TimeSeries.full(axis, 12.0)  # rated everywhere
        farm = WindFarm(rated_power_kw=2000.0)
        production = farm.production_energy(speed)
        # 2000 kW for 15 minutes = 500 kWh per interval
        assert production.values[0] == pytest.approx(500.0)

    def test_simulate_wind_production(self):
        axis = axis_for_days(START, 3)
        production = simulate_wind_production(axis, np.random.default_rng(2))
        assert production.is_nonnegative()
        assert production.total() > 0


class TestSurplus:
    def test_surplus_nonnegative_and_correct(self):
        axis = axis_for_days(START, 1)
        production = TimeSeries.full(axis, 2.0)
        demand = TimeSeries(axis, np.linspace(0, 4, axis.length))
        surplus = surplus_series(production, demand)
        assert surplus.is_nonnegative()
        assert surplus.values[0] == pytest.approx(2.0)
        assert surplus.values[-1] == pytest.approx(0.0)

"""Unit tests for :mod:`repro.timeseries.calendar`."""

from __future__ import annotations

from datetime import date, datetime, time, timedelta

from repro.timeseries.calendar import (
    DailyWindow,
    DayType,
    Season,
    day_type,
    is_holiday,
    minutes_since_midnight,
    season,
)


class TestDayType:
    def test_weekdays(self):
        assert day_type(date(2012, 3, 5)) is DayType.WORKDAY  # Monday
        assert day_type(date(2012, 3, 9)) is DayType.WORKDAY  # Friday

    def test_weekend(self):
        assert day_type(date(2012, 3, 10)) is DayType.SATURDAY
        assert day_type(date(2012, 3, 11)) is DayType.SUNDAY

    def test_holiday_counts_as_sunday(self):
        assert is_holiday(date(2012, 12, 25))
        assert day_type(date(2012, 12, 25)) is DayType.SUNDAY

    def test_is_weekend_property(self):
        assert not DayType.WORKDAY.is_weekend
        assert DayType.SATURDAY.is_weekend
        assert DayType.SUNDAY.is_weekend


class TestSeason:
    def test_all_seasons(self):
        assert season(date(2012, 1, 15)) is Season.WINTER
        assert season(date(2012, 4, 15)) is Season.SPRING
        assert season(date(2012, 7, 15)) is Season.SUMMER
        assert season(date(2012, 10, 15)) is Season.AUTUMN
        assert season(date(2012, 12, 15)) is Season.WINTER


class TestDailyWindow:
    def test_simple_window_contains(self):
        window = DailyWindow(time(9, 0), time(17, 0))
        assert window.contains(time(9, 0))
        assert window.contains(time(12, 30))
        assert not window.contains(time(17, 0))  # end exclusive
        assert not window.contains(time(3, 0))

    def test_wrapping_window(self):
        night = DailyWindow(time(22, 0), time(6, 0))
        assert night.wraps_midnight
        assert night.contains(time(23, 30))
        assert night.contains(time(2, 0))
        assert not night.contains(time(12, 0))
        assert not night.contains(time(6, 0))

    def test_contains_datetime(self):
        window = DailyWindow(time(9, 0), time(17, 0))
        assert window.contains(datetime(2012, 3, 5, 10, 0))

    def test_duration(self):
        assert DailyWindow(time(9, 0), time(17, 0)).duration() == timedelta(hours=8)
        assert DailyWindow(time(22, 0), time(6, 0)).duration() == timedelta(hours=8)

    def test_minutes_since_midnight(self):
        assert minutes_since_midnight(time(1, 30)) == 90
        assert minutes_since_midnight(datetime(2012, 3, 5, 23, 59)) == 1439

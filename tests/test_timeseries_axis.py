"""Unit tests for :mod:`repro.timeseries.axis`."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.errors import AxisMismatchError, ResolutionError
from repro.timeseries.axis import (
    FIFTEEN_MINUTES,
    ONE_MINUTE,
    TimeAxis,
    axis_for_days,
)

START = datetime(2012, 3, 5)


class TestConstruction:
    def test_basic_construction(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        assert axis.length == 96
        assert axis.start == START
        assert axis.end == START + timedelta(days=1)

    def test_zero_length_allowed(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 0)
        assert len(axis) == 0
        assert axis.end == START

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            TimeAxis(START, FIFTEEN_MINUTES, -1)

    def test_non_positive_resolution_rejected(self):
        with pytest.raises(ResolutionError):
            TimeAxis(START, timedelta(0), 10)
        with pytest.raises(ResolutionError):
            TimeAxis(START, timedelta(minutes=-5), 10)

    def test_resolution_must_divide_day(self):
        with pytest.raises(ResolutionError):
            TimeAxis(START, timedelta(minutes=7), 10)

    def test_hour_resolution_accepted(self):
        axis = TimeAxis(START, timedelta(hours=1), 24)
        assert axis.intervals_per_day == 24


class TestDerived:
    def test_intervals_per_day(self):
        assert TimeAxis(START, FIFTEEN_MINUTES, 1).intervals_per_day == 96
        assert TimeAxis(START, ONE_MINUTE, 1).intervals_per_day == 1440

    def test_intervals_per_hour(self):
        assert TimeAxis(START, FIFTEEN_MINUTES, 1).intervals_per_hour == 4.0

    def test_hours_per_interval(self):
        assert TimeAxis(START, FIFTEEN_MINUTES, 1).hours_per_interval == 0.25

    def test_duration(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 8)
        assert axis.duration == timedelta(hours=2)


class TestIndexing:
    def test_time_at_and_index_of_roundtrip(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        for i in (0, 1, 50, 95):
            assert axis.index_of(axis.time_at(i)) == i

    def test_time_at_negative_index(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        assert axis.time_at(-1) == axis.time_at(95)

    def test_time_at_out_of_range(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        with pytest.raises(IndexError):
            axis.time_at(96)
        with pytest.raises(IndexError):
            axis.time_at(-97)

    def test_index_of_mid_interval_time(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        assert axis.index_of(START + timedelta(minutes=20)) == 1

    def test_index_of_outside_raises(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 4)
        with pytest.raises(IndexError):
            axis.index_of(START - timedelta(minutes=1))
        with pytest.raises(IndexError):
            axis.index_of(axis.end)

    def test_clamp_index_of(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 4)
        assert axis.clamp_index_of(START - timedelta(hours=5)) == 0
        assert axis.clamp_index_of(axis.end + timedelta(hours=1)) == 3

    def test_contains(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 4)
        assert axis.contains(START)
        assert axis.contains(axis.end - timedelta(seconds=1))
        assert not axis.contains(axis.end)

    def test_times_iterates_all_starts(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 3)
        assert list(axis.times()) == [
            START,
            START + timedelta(minutes=15),
            START + timedelta(minutes=30),
        ]


class TestStructural:
    def test_sub_axis(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        sub = axis.sub_axis(4, 8)
        assert sub.start == START + timedelta(hours=1)
        assert sub.length == 8

    def test_sub_axis_out_of_range(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 10)
        with pytest.raises(IndexError):
            axis.sub_axis(5, 6)

    def test_day_slices_whole_days(self):
        axis = axis_for_days(START, 3)
        slices = axis.day_slices()
        assert slices == [(0, 96), (96, 96), (192, 96)]

    def test_day_slices_partial_tail(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 100)
        assert axis.day_slices() == [(0, 96), (96, 4)]

    def test_aligned_with(self):
        a = TimeAxis(START, FIFTEEN_MINUTES, 96)
        b = TimeAxis(START, FIFTEEN_MINUTES, 96)
        c = TimeAxis(START, FIFTEEN_MINUTES, 95)
        assert a.aligned_with(b)
        assert not a.aligned_with(c)

    def test_compatible_with_phase(self):
        a = TimeAxis(START, FIFTEEN_MINUTES, 96)
        b = TimeAxis(START + timedelta(minutes=30), FIFTEEN_MINUTES, 10)
        off = TimeAxis(START + timedelta(minutes=7), FIFTEEN_MINUTES, 10)
        assert a.compatible_with(b)
        assert not a.compatible_with(off)

    def test_require_aligned_raises(self):
        a = TimeAxis(START, FIFTEEN_MINUTES, 96)
        b = TimeAxis(START, ONE_MINUTE, 96)
        with pytest.raises(AxisMismatchError):
            a.require_aligned(b)

    def test_shift(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        shifted = axis.shift(4)
        assert shifted.start == START + timedelta(hours=1)
        assert shifted.length == 96

    def test_extended(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 10)
        assert axis.extended(6).length == 16
        with pytest.raises(ValueError):
            axis.extended(-1)

    def test_axis_for_days(self):
        axis = axis_for_days(START, 2, ONE_MINUTE)
        assert axis.length == 2880

"""Unit tests of the fleet pipeline engine (repro.pipeline)."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.disaggregation.matching import MatchingConfig, match_pursuit
from repro.errors import DataError, ValidationError
from repro.extraction import (
    FlexOfferParams,
    FrequencyBasedExtractor,
    PeakBasedExtractor,
    ScheduleBasedExtractor,
)
from repro.pipeline import (
    STAGES,
    FleetPipeline,
    StageTimings,
    canonical_offer,
    offers_equivalent,
    results_identical,
    run_sequential,
)
from repro.pipeline.fleet import fleet_schedule_target
from repro.scheduling import ScheduleConfig
from repro.simulation.dataset import generate_fleet

START = datetime(2012, 3, 5)


@pytest.fixture(scope="module")
def tiny_fleet():
    return generate_fleet(4, START, 2, seed=7)


class TestFleetPipeline:
    def test_batched_equals_sequential_household_level(self, tiny_fleet):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        batched = FleetPipeline(extractor, chunk_size=2).run(tiny_fleet)
        sequential = run_sequential(tiny_fleet, extractor)
        assert offers_equivalent(batched.offers, sequential.offers)
        # Deterministic per-household id scopes: exact equality, ids included.
        assert results_identical(batched, sequential)
        assert len(batched.households) == 4

    def test_batched_equals_sequential_appliance_level(self, tiny_fleet):
        extractor = FrequencyBasedExtractor()
        batched = FleetPipeline(extractor, chunk_size=3).run(tiny_fleet)
        sequential = run_sequential(tiny_fleet, extractor)
        assert offers_equivalent(batched.offers, sequential.offers)
        assert results_identical(batched, sequential)

    def test_chunk_size_invariance(self, tiny_fleet):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        one = FleetPipeline(extractor, chunk_size=1).run(tiny_fleet)
        big = FleetPipeline(extractor, chunk_size=64).run(tiny_fleet)
        assert offers_equivalent(one.offers, big.offers)

    def test_stage_timings_recorded(self, tiny_fleet):
        result = FleetPipeline(FrequencyBasedExtractor()).run(tiny_fleet)
        # The schedule stage only runs (and is only timed) with a target.
        for stage in STAGES:
            if stage == "schedule":
                assert stage not in result.timings.seconds
            else:
                assert stage in result.timings.seconds
        # Appliance-level extractors spend real time disaggregating.
        assert result.timings.seconds["disaggregate"] > 0.0
        assert result.timings.total > 0.0
        rows = result.timings.rows()
        assert [row["stage"] for row in rows[: len(STAGES)]] == list(STAGES)

    def test_schedule_based_split_matches_extract(self, tiny_fleet):
        # The detect/formulate split must be a pure refactor of extract().
        trace = tiny_fleet.traces[0]
        extractor = ScheduleBasedExtractor()
        direct = extractor.extract(trace.total, np.random.default_rng(5))
        detected = extractor.detect(trace.total)
        split = extractor.formulate(trace.total, detected, np.random.default_rng(5))
        assert offers_equivalent(direct.offers, split.offers)

    def test_aggregates_cover_all_offers(self, tiny_fleet):
        result = FleetPipeline(FrequencyBasedExtractor()).run(tiny_fleet)
        member_count = sum(a.size for a in result.aggregates)
        assert member_count == len(result.offers)

    def test_worker_fanout_deterministic_offer_ids(self, tiny_fleet):
        # Workers mint ids inside per-household scopes, so a fanned-out run
        # is bit-identical to the in-process sequential loop — ids included.
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        fanned = FleetPipeline(extractor, chunk_size=1, workers=2).run(tiny_fleet)
        ids = [offer.offer_id for offer in fanned.offers]
        assert len(set(ids)) == len(ids)
        sequential = run_sequential(tiny_fleet, extractor)
        assert offers_equivalent(fanned.offers, sequential.offers)
        assert results_identical(fanned, sequential)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValidationError):
            FleetPipeline().run([])


class TestScheduleStage:
    @pytest.fixture(scope="class")
    def target(self, tiny_fleet):
        return fleet_schedule_target(tiny_fleet, seed=2)

    def test_no_target_no_schedule(self, tiny_fleet):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = FleetPipeline(extractor).run(tiny_fleet)
        assert result.schedule is None

    def test_schedule_stage_runs_and_is_timed(self, tiny_fleet, target):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = FleetPipeline(extractor).run(tiny_fleet, target=target)
        assert result.schedule is not None
        assert "schedule" in result.timings.seconds
        placed = {s.offer.offer_id for s in result.schedule.schedules}
        unplaced = {o.offer_id for o in result.schedule.unplaced}
        aggregate_ids = {a.offer.offer_id for a in result.aggregates}
        assert placed | unplaced == aggregate_ids
        assert result.schedule.cost <= result.schedule.baseline_cost + 1e-9

    def test_batched_equals_sequential_with_schedule(self, tiny_fleet, target):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        config = ScheduleConfig(improve_iterations=50, improve_seed=3)
        batched = FleetPipeline(extractor, chunk_size=2, schedule=config).run(
            tiny_fleet, target=target
        )
        sequential = run_sequential(
            tiny_fleet, extractor, target=target, schedule_config=config
        )
        assert results_identical(batched, sequential)

    def test_schedule_mismatch_breaks_identity(self, tiny_fleet, target):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        with_schedule = FleetPipeline(extractor).run(tiny_fleet, target=target)
        without = FleetPipeline(extractor).run(tiny_fleet)
        assert not results_identical(with_schedule, without)

    def test_schedule_engines_agree_on_fleet_aggregates(self, tiny_fleet, target):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        vectorized = FleetPipeline(
            extractor, schedule=ScheduleConfig(engine="vectorized")
        ).run(tiny_fleet, target=target)
        reference = FleetPipeline(
            extractor, schedule=ScheduleConfig(engine="reference")
        ).run(tiny_fleet, target=target)
        assert [
            (s.offer.offer_id, s.start) for s in vectorized.schedule.schedules
        ] == [(s.offer.offer_id, s.start) for s in reference.schedule.schedules]
        assert vectorized.schedule.cost == pytest.approx(
            reference.schedule.cost, rel=1e-9
        )

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            FleetPipeline(chunk_size=0)
        with pytest.raises(ValidationError):
            FleetPipeline(workers=0)


class TestMatchingEngines:
    def test_engine_validation(self):
        with pytest.raises(DataError):
            MatchingConfig(engine="turbo")

    def test_engines_agree_on_clean_day(self, tiny_fleet):
        trace = tiny_fleet.traces[0]
        vectorized = match_pursuit(trace.total, trace_database(), MatchingConfig())
        reference = match_pursuit(
            trace.total, trace_database(), MatchingConfig(engine="reference")
        )
        assert len(vectorized.detections) == len(reference.detections)
        for a, b in zip(vectorized.detections, reference.detections):
            assert a.appliance == b.appliance
            assert a.start == b.start
            assert a.energy_kwh == pytest.approx(b.energy_kwh, rel=1e-9)
        assert vectorized.explained_kwh == pytest.approx(
            reference.explained_kwh, rel=1e-9
        )


def trace_database():
    from repro.appliances.database import default_database

    return default_database()


class TestStageTimings:
    def test_merge_and_total(self):
        timings = StageTimings()
        timings.add("extract", 1.0)
        timings.merge({"extract": 0.5, "group": 0.25})
        assert timings.seconds["extract"] == pytest.approx(1.5)
        assert timings.total == pytest.approx(1.75)


class TestCanonicalOffer:
    def test_ignores_offer_id(self, tiny_fleet):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        series = tiny_fleet.traces[0].metered()
        first = extractor.extract(series, np.random.default_rng(3)).offers
        second = extractor.extract(series, np.random.default_rng(3)).offers
        assert [o.offer_id for o in first] != [o.offer_id for o in second]
        assert list(map(canonical_offer, first)) == list(map(canonical_offer, second))

"""Tests for the §6 future-work extensions: online generation and
production flex-offers."""

from __future__ import annotations

from datetime import date, datetime, timedelta

import numpy as np
import pytest

from repro.appliances.database import default_database
from repro.errors import ExtractionError
from repro.extraction.online import OnlineConfig, OnlineFlexOfferGenerator
from repro.extraction.production import (
    DispatchableProductionExtractor,
    WindProductionExtractor,
)
from repro.scheduling import greedy_schedule
from repro.simulation.activations import Activation, materialise
from repro.simulation.res import simulate_wind_production
from repro.timeseries.axis import ONE_MINUTE, TimeAxis, axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


@pytest.fixture(scope="module")
def generator(request):
    trace = request.getfixturevalue("nilm_trace")
    return OnlineFlexOfferGenerator.train(trace.total)


class TestOnlineTraining:
    def test_requires_minute_history(self, nilm_trace):
        with pytest.raises(ExtractionError):
            OnlineFlexOfferGenerator.train(nilm_trace.metered())

    def test_training_learns_flexible_appliances(self, generator, nilm_trace):
        learned = {e.appliance for e in generator.table.flexible_entries()}
        true_flexible = {a.appliance for a in nilm_trace.activations if a.flexible}
        assert learned & true_flexible

    def test_config_validation(self):
        with pytest.raises(ExtractionError):
            OnlineConfig(onset_minutes=1)
        with pytest.raises(ExtractionError):
            OnlineConfig(onset_score=0.0)


class TestAnticipatoryMode:
    def test_emits_offers_before_the_day(self, generator):
        offers = generator.anticipate(date(2012, 3, 19))  # a Monday
        assert offers
        midnight = datetime(2012, 3, 19)
        for offer in offers:
            assert offer.source == "online-anticipatory"
            assert offer.creation_time < midnight  # issued ahead of time
            assert offer.earliest_start >= midnight
            assert offer.appliance

    def test_daily_appliance_predicted_daily(self, generator):
        """The vacuum robot (daily habit) appears on every workday."""
        appliances_by_day = []
        for day in (date(2012, 3, 19), date(2012, 3, 20), date(2012, 3, 21)):
            offers = generator.anticipate(day)
            appliances_by_day.append({o.appliance for o in offers})
        common = set.intersection(*appliances_by_day)
        assert common  # at least one habitually-daily appliance

    def test_energy_bands_cover_catalogue_range(self, generator):
        db = default_database()
        for offer in generator.anticipate(date(2012, 3, 19)):
            spec = db.get(offer.appliance)
            tmin, tmax = offer.effective_total_bounds()
            assert tmin == pytest.approx(spec.energy_min_kwh, rel=0.01)
            assert tmax == pytest.approx(spec.energy_max_kwh, rel=0.01)

    def test_anticipated_offers_schedule(self, generator):
        """Day-ahead offers must be consumable by the MIRABEL scheduler."""
        offers = generator.anticipate(date(2012, 3, 19))
        axis = axis_for_days(datetime(2012, 3, 19), 2)
        wind = simulate_wind_production(axis, np.random.default_rng(0))
        total = sum(o.profile_energy_max for o in offers)
        target = wind * (total / wind.total())
        result = greedy_schedule(offers, target)
        assert len(result.schedules) == len(offers)


class TestReactiveMode:
    def _stream_day(self, generator, series_values, start):
        generator.reset_stream()
        emitted = []
        for minute, value in enumerate(series_values):
            when = start + timedelta(minutes=minute)
            emitted.extend(
                (when, offer) for offer in generator.observe(when, float(value))
            )
        return emitted

    def test_detects_onset_of_known_appliance(self, generator):
        """A flexible-appliance onset is flagged promptly.

        Attribution among wet appliances with near-identical heat-led onsets
        is ambiguous from a 20-minute head (the paper's §4 NILM caveat), so
        the contract is: *some* flexible offer is emitted within the onset
        window — not necessarily under the right name.
        """
        db = default_database()
        spec = db.get("washing-machine-y")
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        run_start = START + timedelta(hours=18)
        acts = [Activation(spec.name, run_start, 2.2, spec.cycle_duration, True)]
        series = materialise(acts, {spec.name: spec}, axis)
        emitted = self._stream_day(generator, series.values, START)
        assert emitted
        when, offer = emitted[0]
        delay = when - run_start
        assert timedelta(0) <= delay <= timedelta(minutes=25)
        assert offer.source == "online-reactive"
        assert offer.earliest_start <= run_start
        assert default_database().get(offer.appliance).flexible

    def test_refractory_bounds_emissions(self, generator):
        """One run yields at most two emissions (claimed cycle refractory)."""
        db = default_database()
        spec = db.get("washing-machine-y")
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        acts = [
            Activation(spec.name, START + timedelta(hours=18), 2.2,
                       spec.cycle_duration, True)
        ]
        series = materialise(acts, {spec.name: spec}, axis)
        emitted = self._stream_day(generator, series.values, START)
        assert 1 <= len(emitted) <= 2
        # Consecutive emissions respect the claimed-cycle refractory: the
        # second can only fire after the first claimed template expires.
        if len(emitted) == 2:
            (t1, o1), (t2, _o2) = emitted
            claimed_cycle = default_database().get(o1.appliance).cycle_duration
            onset1 = t1 - timedelta(minutes=generator.config.onset_minutes - 1)
            assert t2 >= onset1 + claimed_cycle

    def test_quiet_stream_emits_nothing(self, generator):
        axis = TimeAxis(START, ONE_MINUTE, 6 * 60)
        flat = TimeSeries.full(axis, 0.05 / 60)  # standby only
        emitted = self._stream_day(generator, flat.values, START)
        assert emitted == []

    def test_non_consecutive_readings_rejected(self, generator):
        generator.reset_stream()
        generator.observe(START, 0.001)
        with pytest.raises(ExtractionError):
            generator.observe(START + timedelta(minutes=5), 0.001)


class TestWindProduction:
    def test_offers_on_high_output_runs(self):
        axis = axis_for_days(START, 2)
        production = simulate_wind_production(axis, np.random.default_rng(3))
        extractor = WindProductionExtractor()
        result = extractor.extract(production, np.random.default_rng(0))
        assert result.offers
        threshold = result.extras["threshold"]
        for offer in result.offers:
            assert offer.is_production
            first = axis.index_of(offer.earliest_start)
            # Every covered interval is above the detection threshold.
            assert (production.values[first : first + len(offer.slices)] > threshold).all()

    def test_uncertainty_band(self):
        axis = axis_for_days(START, 1)
        production = TimeSeries.full(axis, 10.0)
        extractor = WindProductionExtractor(threshold_quantile=0.5, uncertainty=0.2)
        # Constant series: quantile == values, no strict exceedance -> no offers.
        result = extractor.extract(production, np.random.default_rng(0))
        assert result.offers == []

    def test_negative_input_rejected(self):
        axis = axis_for_days(START, 1)
        bad = TimeSeries(axis, np.linspace(-1, 1, axis.length))
        with pytest.raises(ExtractionError):
            WindProductionExtractor().extract(bad, np.random.default_rng(0))

    def test_validation(self):
        with pytest.raises(ExtractionError):
            WindProductionExtractor(threshold_quantile=0.0)
        with pytest.raises(ExtractionError):
            WindProductionExtractor(uncertainty=1.0)

    def test_mixed_scheduling_reduces_net_imbalance(self):
        """Consumption + production offers scheduled against zero net."""
        axis = axis_for_days(START, 2)
        production = simulate_wind_production(axis, np.random.default_rng(3))
        production = production * (50.0 / production.total())
        prod_offers = WindProductionExtractor().extract(
            production, np.random.default_rng(0)
        ).offers
        from repro.flexoffer.model import FlexOffer, ProfileSlice

        # Zero-minimum demand: consumption happens only where it helps, so
        # adding flexibility can never hurt the net balance.
        demand_offers = [
            FlexOffer(
                earliest_start=START + timedelta(hours=h),
                latest_start=START + timedelta(hours=h + 12),
                slices=(ProfileSlice(0.0, 2.0), ProfileSlice(0.0, 2.0)),
            )
            for h in (1, 5, 9, 25, 29)
        ]
        zero = TimeSeries.zeros(axis)
        mixed = greedy_schedule(prod_offers + demand_offers, zero)
        prod_only = greedy_schedule(prod_offers, zero)
        # Adding shiftable demand lets the scheduler cancel production peaks.
        assert mixed.cost < prod_only.cost


class TestDispatchableProduction:
    def test_one_offer_per_day(self):
        axis = axis_for_days(START, 3)
        horizon = TimeSeries.zeros(axis)
        extractor = DispatchableProductionExtractor(capacity_kw=400.0)
        result = extractor.extract(horizon, np.random.default_rng(0))
        assert len(result.offers) == 3
        for offer in result.offers:
            assert offer.is_production
            tmin, tmax = offer.effective_total_bounds()
            # Deep band: min stable generation up to capacity (negative).
            assert tmin < tmax < 0

    def test_validation(self):
        with pytest.raises(ExtractionError):
            DispatchableProductionExtractor(capacity_kw=0.0)
        with pytest.raises(ExtractionError):
            DispatchableProductionExtractor(min_stable_fraction=1.5)

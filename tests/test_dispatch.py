"""Fault-tolerant chunk dispatch: retry, backoff, degradation contracts.

These tests drive :func:`repro.pipeline.dispatch.dispatch_chunks` through
scripted fake executors, so every failure path — broken pool, wedged
worker, retry exhaustion, pool construction failure — runs deterministically
and fast on every tier-1 pass.  The real-process-pool paths (workers
actually SIGKILLed mid-chunk) live in ``test_failure_injection.py``.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout

import pytest

from repro.errors import (
    DegradedExecutionWarning,
    ValidationError,
    WorkerRetryError,
)
from repro.pipeline.dispatch import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    backoff_seconds,
    dispatch_chunks,
)

#: Backoff-free policy so failure-path tests never actually sleep.
FAST = RetryPolicy(backoff_base_seconds=0.0, backoff_max_seconds=0.0)


class _ScriptedFuture:
    def __init__(self, outcome):
        self._outcome = outcome
        self.timeouts: list[float | None] = []

    def result(self, timeout=None):
        self.timeouts.append(timeout)
        if isinstance(self._outcome, BaseException):
            raise self._outcome
        return self._outcome


class _ScriptedPool:
    """One pool generation: maps chunk args to scripted outcomes."""

    def __init__(self, outcomes):
        self._outcomes = outcomes
        self.submitted: list[tuple] = []
        self.futures: dict[int, _ScriptedFuture] = {}
        self.shut_down = False

    def submit(self, fn, *args):
        self.submitted.append(args)
        index = args[0]
        future = _ScriptedFuture(self._outcomes[index])
        self.futures[index] = future
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shut_down = True


class _PoolFactory:
    """Yields one scripted pool per call; records every generation."""

    def __init__(self, *generations):
        self._generations = list(generations)
        self.pools: list[_ScriptedPool] = []

    def __call__(self):
        outcome = self._generations.pop(0)
        if isinstance(outcome, OSError):
            raise outcome
        pool = _ScriptedPool(outcome)
        self.pools.append(pool)
        return pool


def _noop_worker(index):  # pragma: no cover - never runs in-process
    raise AssertionError("scripted pools never call the worker function")


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.fallback_sequential

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"timeout_seconds": 0}, "timeout_seconds"),
            ({"timeout_seconds": -1.0}, "timeout_seconds"),
            ({"backoff_base_seconds": -0.1}, "backoff seconds"),
            ({"backoff_max_seconds": -1.0}, "backoff seconds"),
            ({"jitter_fraction": 1.5}, "jitter_fraction"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValidationError, match=match):
            RetryPolicy(**kwargs)

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.1, backoff_factor=2.0, backoff_max_seconds=0.3
        )
        assert backoff_seconds(policy, 3, 1) == backoff_seconds(policy, 3, 1)
        # Jitter is keyed on (chunk, attempt): different coordinates differ.
        assert backoff_seconds(policy, 3, 1) != backoff_seconds(policy, 4, 1)
        # Exponential growth saturates at the cap (plus at most the jitter).
        assert backoff_seconds(policy, 0, 9) <= 0.3 * (1 + policy.jitter_fraction)
        # And never undershoots the uncapped base.
        assert backoff_seconds(policy, 0, 1) >= 0.1


class TestDispatch:
    def test_happy_path_returns_in_task_order(self):
        factory = _PoolFactory({0: "a", 1: "b", 2: "c"})
        results = dispatch_chunks(
            [(0,), (1,), (2,)], _noop_worker, factory, lambda i: None, policy=FAST
        )
        assert results == ["a", "b", "c"]
        assert factory.pools[0].shut_down

    def test_broken_pool_rebuilds_and_redispatches_only_outstanding(self):
        # Chunk 1's worker dies; chunks 0 and 2 completed.  The rebuilt
        # pool must only ever see chunk 1 again.
        factory = _PoolFactory(
            {0: "a", 1: BrokenExecutor("worker died"), 2: "c"},
            {1: "b"},
        )
        results = dispatch_chunks(
            [(0,), (1,), (2,)], _noop_worker, factory, lambda i: None, policy=FAST
        )
        assert results == ["a", "b", "c"]
        assert len(factory.pools) == 2
        assert factory.pools[1].submitted == [(1,)]
        # After the loss was detected, the remaining future was drained
        # without blocking (timeout 0.0), not waited on.
        assert factory.pools[0].futures[2].timeouts == [0.0]

    def test_wedged_worker_times_out_and_retries(self):
        policy = RetryPolicy(
            timeout_seconds=0.5, backoff_base_seconds=0.0, backoff_max_seconds=0.0
        )
        factory = _PoolFactory({0: FuturesTimeout()}, {0: "recovered"})
        results = dispatch_chunks(
            [(0,)], _noop_worker, factory, lambda i: None, policy=policy
        )
        assert results == ["recovered"]
        assert factory.pools[0].futures[0].timeouts == [0.5]

    def test_exhaustion_degrades_to_local_runner(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_base_seconds=0.0, backoff_max_seconds=0.0
        )
        factory = _PoolFactory(
            {0: BrokenExecutor()}, {0: BrokenExecutor()}
        )
        with pytest.warns(DegradedExecutionWarning, match="in-process"):
            results = dispatch_chunks(
                [(0,)],
                _noop_worker,
                factory,
                lambda i: f"local-{i}",
                policy=policy,
                label="unit chunks",
            )
        assert results == ["local-0"]
        assert len(factory.pools) == 2  # one pool per attempt, then local

    def test_exhaustion_without_fallback_raises_pinned_error(self):
        policy = RetryPolicy(
            max_attempts=1,
            backoff_base_seconds=0.0,
            backoff_max_seconds=0.0,
            fallback_sequential=False,
        )
        factory = _PoolFactory({0: BrokenExecutor()})
        with pytest.raises(
            WorkerRetryError,
            match=(
                r"worker dispatch for unit chunks exhausted 1 attempt\(s\) on "
                r"1 chunk\(s\) and the sequential fallback is disabled"
            ),
        ):
            dispatch_chunks(
                [(0,)],
                _noop_worker,
                factory,
                lambda i: None,
                policy=policy,
                label="unit chunks",
            )

    def test_pool_construction_failure_runs_everything_local(self):
        factory = _PoolFactory(OSError("fork bomb protection"))
        with pytest.warns(DegradedExecutionWarning, match="pool unavailable"):
            results = dispatch_chunks(
                [(0,), (1,)], _noop_worker, factory, lambda i: i * 10, policy=FAST
            )
        assert results == [0, 10]

    def test_chunk_exception_propagates_without_retry(self):
        # Deterministic chunk failures are the chunk's own: retrying would
        # fail identically, so the error surfaces on the first attempt.
        factory = _PoolFactory({0: RuntimeError("bad chunk"), 1: "fine"})
        with pytest.raises(RuntimeError, match="bad chunk"):
            dispatch_chunks(
                [(0,), (1,)], _noop_worker, factory, lambda i: None, policy=FAST
            )
        assert len(factory.pools) == 1
        assert factory.pools[0].shut_down

    def test_zero_chunks_never_builds_a_pool(self):
        factory = _PoolFactory()
        assert dispatch_chunks([], _noop_worker, factory, lambda i: None) == []
        assert factory.pools == []

"""Unit tests for :mod:`repro.timeseries.series`."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import AxisMismatchError, DataError
from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis, axis_for_days
from repro.timeseries.series import TimeSeries, concat, stack

START = datetime(2012, 3, 5)


@pytest.fixture()
def axis() -> TimeAxis:
    return TimeAxis(START, FIFTEEN_MINUTES, 8)


class TestConstruction:
    def test_length_mismatch_rejected(self, axis):
        with pytest.raises(DataError):
            TimeSeries(axis, np.ones(7))

    def test_nan_rejected(self, axis):
        values = np.ones(8)
        values[3] = np.nan
        with pytest.raises(DataError):
            TimeSeries(axis, values)

    def test_2d_rejected(self, axis):
        with pytest.raises(DataError):
            TimeSeries(axis, np.ones((2, 4)))

    def test_zeros_and_full(self, axis):
        assert TimeSeries.zeros(axis).total() == 0.0
        assert TimeSeries.full(axis, 2.0).total() == 16.0

    def test_from_function(self, axis):
        series = TimeSeries.from_function(axis, lambda t: float(t.minute == 0))
        assert series.total() == 2.0  # two on-the-hour starts in 2 hours

    def test_copy_is_independent(self, axis):
        a = TimeSeries.full(axis, 1.0)
        b = a.copy()
        b.values[0] = 99.0
        assert a.values[0] == 1.0


class TestAccessors:
    def test_value_at(self, axis):
        series = TimeSeries(axis, np.arange(8.0))
        assert series.value_at(START + timedelta(minutes=16)) == 1.0

    def test_iteration_yields_pairs(self, axis):
        series = TimeSeries(axis, np.arange(8.0))
        pairs = list(series)
        assert pairs[0] == (START, 0.0)
        assert pairs[-1] == (START + timedelta(minutes=105), 7.0)

    def test_min_max_mean_argmax(self, axis):
        series = TimeSeries(axis, [0, 1, 5, 2, 0, 0, 3, 1])
        assert series.max() == 5.0
        assert series.min() == 0.0
        assert series.argmax() == 2
        assert series.mean() == pytest.approx(1.5)

    def test_is_nonnegative(self, axis):
        assert TimeSeries.full(axis, 0.5).is_nonnegative()
        assert not TimeSeries(axis, [-1] + [0] * 7).is_nonnegative()


class TestArithmetic:
    def test_add_scalar_and_series(self, axis):
        a = TimeSeries.full(axis, 1.0)
        b = TimeSeries.full(axis, 2.0)
        assert (a + b).total() == 24.0
        assert (a + 1.0).total() == 16.0

    def test_sum_builtin(self, axis):
        series = [TimeSeries.full(axis, 1.0) for _ in range(3)]
        assert sum(series, TimeSeries.zeros(axis)).total() == 24.0

    def test_sub_mul_div_neg(self, axis):
        a = TimeSeries.full(axis, 4.0)
        assert (a - 1.0).mean() == 3.0
        assert (a * 0.5).mean() == 2.0
        assert (2.0 * a).mean() == 8.0
        assert (a / 2.0).mean() == 2.0
        assert (-a).mean() == -4.0

    def test_misaligned_arithmetic_raises(self, axis):
        other_axis = TimeAxis(START + timedelta(hours=1), FIFTEEN_MINUTES, 8)
        with pytest.raises(AxisMismatchError):
            TimeSeries.zeros(axis) + TimeSeries.zeros(other_axis)

    def test_equality_and_allclose(self, axis):
        a = TimeSeries.full(axis, 1.0)
        b = TimeSeries.full(axis, 1.0)
        assert a == b
        assert a.allclose(b + 1e-12)
        assert not a.allclose(b + 1e-3)

    def test_unhashable(self, axis):
        with pytest.raises(TypeError):
            hash(TimeSeries.zeros(axis))

    def test_clip(self, axis):
        series = TimeSeries(axis, [-1, 0, 1, 2, 3, 4, 5, 6])
        clipped = series.clip(0.0, 4.0)
        assert clipped.min() == 0.0
        assert clipped.max() == 4.0


class TestSlicing:
    def test_slice(self, axis):
        series = TimeSeries(axis, np.arange(8.0))
        sub = series.slice(2, 3)
        assert list(sub.values) == [2.0, 3.0, 4.0]
        assert sub.axis.start == START + timedelta(minutes=30)

    def test_between(self, axis):
        series = TimeSeries(axis, np.arange(8.0))
        sub = series.between(START + timedelta(minutes=15), START + timedelta(minutes=60))
        assert list(sub.values) == [1.0, 2.0, 3.0]

    def test_between_empty_window_raises(self, axis):
        series = TimeSeries.zeros(axis)
        with pytest.raises(ValueError):
            series.between(START + timedelta(minutes=30), START)

    def test_split_days_and_day(self):
        axis = axis_for_days(START, 2)
        series = TimeSeries(axis, np.arange(axis.length, dtype=float))
        days = series.split_days()
        assert len(days) == 2
        assert days[0].total() == sum(range(96))
        assert series.day(1).values[0] == 96.0

    def test_with_values_and_name(self, axis):
        series = TimeSeries.zeros(axis, name="a")
        renamed = series.with_name("b")
        assert renamed.name == "b"
        replaced = series.with_values(np.ones(8))
        assert replaced.total() == 8.0


class TestConversions:
    def test_energy_power_roundtrip(self, axis):
        energy = TimeSeries.full(axis, 0.25)  # 0.25 kWh / 15 min == 1 kW
        power = energy.energy_to_power()
        assert power.mean() == pytest.approx(1.0)
        assert power.power_to_energy().allclose(energy)

    def test_daily_profile_mean(self):
        axis = axis_for_days(START, 2)
        values = np.concatenate([np.zeros(96), np.ones(96)])
        profile = TimeSeries(axis, values).daily_profile()
        assert profile.shape == (96,)
        assert np.allclose(profile, 0.5)

    def test_daily_profile_median_reducer(self):
        axis = axis_for_days(START, 3)
        values = np.concatenate([np.zeros(96), np.zeros(96), np.ones(96)])
        profile = TimeSeries(axis, values).daily_profile(
            reducer=lambda m: np.median(m, axis=0)
        )
        assert np.allclose(profile, 0.0)

    def test_daily_profile_too_short_raises(self, axis):
        with pytest.raises(DataError):
            TimeSeries.zeros(axis).daily_profile()


class TestCombinators:
    def test_stack(self, axis):
        arr = stack([TimeSeries.full(axis, 1.0), TimeSeries.full(axis, 2.0)])
        assert arr.shape == (2, 8)

    def test_stack_empty_raises(self):
        with pytest.raises(DataError):
            stack([])

    def test_concat(self, axis):
        nxt = TimeAxis(axis.end, FIFTEEN_MINUTES, 4)
        joined = concat([TimeSeries.full(axis, 1.0), TimeSeries.full(nxt, 2.0)])
        assert len(joined) == 12
        assert joined.total() == 16.0

    def test_concat_gap_raises(self, axis):
        gap = TimeAxis(axis.end + timedelta(minutes=15), FIFTEEN_MINUTES, 4)
        with pytest.raises(AxisMismatchError):
            concat([TimeSeries.zeros(axis), TimeSeries.zeros(gap)])

"""Tests for the ExtractionResult contract helpers (paper Figure 2 output)."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.extraction.base import ExtractionResult
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.timeseries.axis import axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


@pytest.fixture()
def result():
    axis = axis_for_days(START, 2)
    original = TimeSeries.full(axis, 0.5)
    modified_values = original.values.copy()
    modified_values[10] -= 0.75  # removed 0.75 kWh at one interval
    modified_values[20] -= 0.25
    offers = [
        FlexOffer(
            earliest_start=axis.time_at(10),
            latest_start=axis.time_at(10) + timedelta(hours=2),
            slices=(ProfileSlice(0.5, 1.0),),  # midpoint 0.75
        ),
        FlexOffer(
            earliest_start=axis.time_at(20),
            latest_start=axis.time_at(20) + timedelta(hours=1),
            slices=(ProfileSlice(0.25, 0.25),),
        ),
    ]
    return ExtractionResult(
        offers=offers,
        modified=TimeSeries(axis, modified_values),
        original=original,
        extractor="test",
    )


class TestExtractionResult:
    def test_extracted_energy_is_midpoint_sum(self, result):
        assert result.extracted_energy == pytest.approx(1.0)

    def test_removed_energy(self, result):
        assert result.removed_energy == pytest.approx(1.0)

    def test_conservation_error_zero(self, result):
        assert result.energy_conservation_error() < 1e-12

    def test_extracted_share(self, result):
        assert result.extracted_share == pytest.approx(1.0 / result.original.total())

    def test_extracted_series(self, result):
        series = result.extracted_series()
        assert series.total() == pytest.approx(1.0)
        assert series.values[10] == pytest.approx(0.75)
        assert series.values[20] == pytest.approx(0.25)

    def test_offers_per_day(self, result):
        assert result.offers_per_day() == pytest.approx(1.0)  # 2 offers / 2 days

    def test_summary_keys(self, result):
        summary = result.summary()
        assert summary["offers"] == 2.0
        assert summary["extracted_kwh"] == pytest.approx(1.0)
        assert set(summary) == {
            "offers", "offers_per_day", "extracted_kwh",
            "extracted_share", "conservation_error_kwh",
        }

    def test_zero_total_share(self):
        axis = axis_for_days(START, 1)
        zero = TimeSeries.zeros(axis)
        result = ExtractionResult(
            offers=[], modified=zero, original=zero, extractor="t"
        )
        assert result.extracted_share == 0.0
        assert result.offers_per_day() == 0.0

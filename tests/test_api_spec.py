"""Run-spec layer: strict validation and lossless dict/JSON round-trips.

The round-trip property — ``RunSpec.from_dict(spec.to_dict()) == spec`` for
*every* valid spec — is what makes a spec file a faithful run identity, so
it is property-tested with hypothesis over generated spec trees, including
a full JSON serialisation in the loop.
"""

from __future__ import annotations

import json
from datetime import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    RUN_KINDS,
    SPEC_VERSION,
    ExtractorSpec,
    PipelineSpec,
    RunSpec,
    ScenarioSpec,
    ScheduleSpec,
    ZoneSpec,
    load_run_spec,
    save_run_spec,
)
from repro.errors import SpecError

# --------------------------------------------------------------------- #
# Strategies: JSON-representable spec trees
# --------------------------------------------------------------------- #

json_scalars = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.text(max_size=20),
    st.none(),
)

param_dicts = st.dictionaries(
    st.text(min_size=1, max_size=20), json_scalars, max_size=4
)

scenario_specs = st.builds(
    ScenarioSpec,
    households=st.integers(min_value=1, max_value=1000),
    days=st.integers(min_value=1, max_value=365),
    seed=st.integers(min_value=0, max_value=2**31),
    start=st.datetimes(
        min_value=datetime(2000, 1, 1), max_value=datetime(2030, 12, 31)
    ),
)

extractor_specs = st.builds(
    ExtractorSpec,
    name=st.text(min_size=1, max_size=30),
    params=param_dicts,
)

zone_specs = st.builds(
    ZoneSpec,
    name=st.text(min_size=1, max_size=16),
    target_seed=st.integers(min_value=0, max_value=2**31),
    target_kwh=st.one_of(
        st.none(), st.floats(min_value=0.1, max_value=1e6, allow_nan=False)
    ),
    price_floor=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    price_cap=st.floats(min_value=1.0, max_value=2.0, allow_nan=False),
    # Households stay empty here: cross-zone uniqueness is a ScheduleSpec
    # validation rule, exercised deterministically in the zone tests.
    households=st.just(()),
)

schedule_specs = st.builds(
    ScheduleSpec,
    target=st.sampled_from(("wind", "flat")),
    target_seed=st.integers(min_value=0, max_value=2**31),
    target_kwh=st.one_of(
        st.none(), st.floats(min_value=0.1, max_value=1e6, allow_nan=False)
    ),
    order=st.sampled_from(("least-flexible-first", "largest-first", "as-given")),
    engine=st.sampled_from(("vectorized", "incremental", "reference", "auto")),
    improve_iterations=st.integers(min_value=0, max_value=10_000),
    improve_seed=st.integers(min_value=0, max_value=2**31),
    zones=st.one_of(
        st.just(()),
        st.lists(
            zone_specs, min_size=1, max_size=3, unique_by=lambda z: z.name
        ).map(tuple),
    ),
)

pipeline_specs = st.builds(
    PipelineSpec,
    chunk_size=st.integers(min_value=1, max_value=256),
    workers=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    start_tolerance_minutes=st.integers(min_value=1, max_value=1440),
    flexibility_tolerance_minutes=st.integers(min_value=1, max_value=1440),
    max_group_size=st.integers(min_value=1, max_value=512),
    schedule=st.one_of(st.none(), schedule_specs),
)

run_specs = st.builds(
    RunSpec,
    kind=st.sampled_from(RUN_KINDS),
    scenario=scenario_specs,
    extractors=st.lists(extractor_specs, min_size=1, max_size=4).map(tuple),
    pipeline=pipeline_specs,
    name=st.text(max_size=30),
)


class TestRoundTripProperties:
    @given(spec=run_specs)
    @settings(max_examples=200, deadline=None)
    def test_dict_round_trip(self, spec: RunSpec):
        assert RunSpec.from_dict(spec.to_dict()) == spec

    @given(spec=run_specs)
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip(self, spec: RunSpec):
        assert RunSpec.from_json(spec.to_json()) == spec
        # And the dict encoding itself survives a JSON round-trip unchanged.
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    @given(spec=scenario_specs)
    @settings(max_examples=100, deadline=None)
    def test_scenario_round_trip(self, spec: ScenarioSpec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @given(spec=pipeline_specs)
    @settings(max_examples=100, deadline=None)
    def test_pipeline_round_trip(self, spec: PipelineSpec):
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    @given(spec=schedule_specs)
    @settings(max_examples=100, deadline=None)
    def test_schedule_round_trip(self, spec: ScheduleSpec):
        assert ScheduleSpec.from_dict(spec.to_dict()) == spec


class TestScheduleSpec:
    def test_wire_format_omits_absent_schedule(self):
        # Pre-schedule spec files and goldens must keep loading unchanged.
        assert "schedule" not in PipelineSpec().to_dict()
        enabled = PipelineSpec(schedule=ScheduleSpec())
        assert enabled.to_dict()["schedule"]["target"] == "wind"
        assert PipelineSpec.from_dict(PipelineSpec().to_dict()).schedule is None

    def test_validation(self):
        with pytest.raises(SpecError, match="schedule.target must be"):
            ScheduleSpec(target="tides")
        with pytest.raises(SpecError, match="schedule.order must be"):
            ScheduleSpec(order="random")
        with pytest.raises(SpecError, match="schedule.engine must be"):
            ScheduleSpec(engine="turbo")
        with pytest.raises(SpecError, match="target_kwh"):
            ScheduleSpec(target_kwh=0.0)
        with pytest.raises(SpecError, match="improve_iterations"):
            ScheduleSpec(improve_iterations=-1)
        with pytest.raises(SpecError, match="pipeline.schedule: unknown key"):
            ScheduleSpec.from_dict({"targets": "wind"})

    def test_constants_stay_in_sync_with_the_scheduling_layer(self):
        # The spec layer duplicates the order/engine vocabularies to stay
        # import-light; this pins them to the scheduling layer's own.
        from repro.api.spec import SCHEDULE_ENGINES, SCHEDULE_ORDERS
        from repro.scheduling import greedy

        assert SCHEDULE_ENGINES == greedy._ENGINES
        assert SCHEDULE_ORDERS == greedy._ORDERS

    def test_config_maps_onto_schedule_config(self):
        spec = ScheduleSpec(
            order="largest-first", engine="reference", improve_iterations=7,
            improve_seed=3,
        )
        config = spec.config()
        assert (config.order, config.engine) == ("largest-first", "reference")
        assert (config.improve_iterations, config.improve_seed) == (7, 3)

    @given(spec=run_specs)
    @settings(max_examples=50, deadline=None)
    def test_file_round_trip(self, spec: RunSpec, tmp_path_factory):
        path = tmp_path_factory.mktemp("specs") / "spec.json"
        save_run_spec(spec, path)
        assert load_run_spec(path) == spec


class TestStrictValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="run spec: unknown key\\(s\\) 'frobnicate'"):
            RunSpec.from_dict({"kind": "fleet", "frobnicate": 1})

    def test_unknown_nested_key_names_the_path(self):
        with pytest.raises(SpecError, match="scenario: unknown key\\(s\\) 'household'"):
            RunSpec.from_dict({"scenario": {"household": 3}})

    def test_unsupported_version(self):
        with pytest.raises(SpecError, match="unsupported run-spec version 99"):
            RunSpec.from_dict({"version": 99})

    def test_bad_kind(self):
        with pytest.raises(SpecError, match="kind must be one of fleet, compare, bench"):
            RunSpec.from_dict({"kind": "party"})

    def test_wrong_type_reports_path_and_types(self):
        with pytest.raises(SpecError, match="scenario.households: expected int, got str"):
            RunSpec.from_dict({"scenario": {"households": "four"}})

    def test_bool_is_not_an_int(self):
        with pytest.raises(SpecError, match="scenario.days: expected int, got bool"):
            RunSpec.from_dict({"scenario": {"days": True}})

    def test_bad_start_date(self):
        with pytest.raises(SpecError, match="scenario.start"):
            RunSpec.from_dict({"scenario": {"start": "not-a-date"}})

    def test_extractor_missing_name(self):
        with pytest.raises(SpecError, match="missing required key 'name'"):
            ExtractorSpec.from_dict({"params": {}})

    def test_extractors_must_be_non_empty(self):
        with pytest.raises(SpecError, match="at least one extractor"):
            RunSpec.from_dict({"extractors": []})

    def test_params_must_be_mapping(self):
        with pytest.raises(SpecError, match="extractor.params"):
            ExtractorSpec.from_dict({"name": "basic", "params": [1, 2]})

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            RunSpec.from_json("{nope")

    def test_scenario_bounds(self):
        with pytest.raises(SpecError, match="households must be >= 1"):
            ScenarioSpec(households=0)
        with pytest.raises(SpecError, match="days must be >= 1"):
            ScenarioSpec(days=0)

    def test_pipeline_bounds(self):
        with pytest.raises(SpecError, match="chunk_size"):
            PipelineSpec(chunk_size=0)
        with pytest.raises(SpecError, match="workers"):
            PipelineSpec(workers=0)


class TestSpecBehaviour:
    def test_defaults_build_a_valid_fleet_spec(self):
        spec = RunSpec()
        assert spec.kind == "fleet"
        assert spec.version == SPEC_VERSION
        assert spec.extractors[0].name == "frequency-based"

    def test_extractor_params_are_immutable(self):
        spec = ExtractorSpec("basic", {"flexible_share": 0.05})
        with pytest.raises(TypeError):
            spec.params["flexible_share"] = 0.5  # type: ignore[index]

    def test_with_overrides_replaces_fields(self):
        spec = RunSpec()
        changed = spec.with_overrides(name="nightly")
        assert changed.name == "nightly"
        assert changed.scenario == spec.scenario

    def test_pipeline_grouping_params_units(self):
        from datetime import timedelta

        grouping = PipelineSpec(start_tolerance_minutes=30).grouping_params()
        assert grouping.start_tolerance == timedelta(minutes=30)

    def test_extractor_spec_create_goes_through_registry(self):
        extractor = ExtractorSpec("peak-based", {"flexible_share": 0.1}).create()
        assert extractor.name == "peak-based"
        assert extractor.params.flexible_share == 0.1

"""Unit tests for frequency estimation and schedule mining (§4 step 1)."""

from __future__ import annotations

from datetime import date, datetime, time, timedelta

import numpy as np
import pytest

from repro.appliances.database import default_database
from repro.disaggregation.frequency import estimate_frequencies
from repro.disaggregation.schedule_mining import (
    count_day_types,
    mine_schedule,
)
from repro.errors import DataError
from repro.simulation.activations import Activation
from repro.timeseries.calendar import DailyWindow, DayType

START = datetime(2012, 3, 5)  # a Monday


def runs(appliance: str, starts: list[datetime], energy: float = 1.5):
    db = default_database()
    spec = db.get(appliance)
    return [
        Activation(appliance, s, energy, spec.cycle_duration, spec.flexible)
        for s in starts
    ]


class TestFrequencyEstimation:
    def test_daily_appliance_frequency(self):
        starts = [START + timedelta(days=d, hours=10) for d in range(14)]
        detections = runs("vacuum-robot-x", starts, energy=0.7)
        table = estimate_frequencies(detections, default_database(), observation_days=14)
        entry = table.get("vacuum-robot-x")
        assert entry.frequency.uses_per_week == pytest.approx(7.0)
        assert entry.detections == 14
        assert entry.time_flexibility == timedelta(hours=22)
        assert entry.mean_energy_kwh == pytest.approx(0.7)

    def test_min_detections_filter(self):
        detections = runs("washing-machine-y", [START + timedelta(hours=18)])
        table = estimate_frequencies(
            detections, default_database(), observation_days=7, min_detections=2
        )
        assert "washing-machine-y" not in table
        assert len(table) == 0

    def test_weekend_skew_detected(self):
        # Dishwasher on both weekend days of two weeks, one workday use.
        starts = [
            START + timedelta(days=5, hours=19),   # Sat
            START + timedelta(days=6, hours=19),   # Sun
            START + timedelta(days=12, hours=19),  # Sat
            START + timedelta(days=13, hours=19),  # Sun
            START + timedelta(days=2, hours=19),   # Wed
        ]
        detections = runs("dishwasher-z", starts)
        table = estimate_frequencies(detections, default_database(), observation_days=14)
        weights = table.get("dishwasher-z").frequency.day_type_weights
        assert weights[DayType.SATURDAY] > weights[DayType.WORKDAY]
        assert weights[DayType.SUNDAY] > weights[DayType.WORKDAY]

    def test_flexible_entries_filter(self):
        detections = runs("oven", [START + timedelta(days=d, hours=18) for d in range(5)])
        detections += runs("washing-machine-y", [START + timedelta(days=d, hours=20) for d in range(5)])
        table = estimate_frequencies(detections, default_database(), observation_days=7)
        flexible = table.flexible_entries()
        assert [e.appliance for e in flexible] == ["washing-machine-y"]

    def test_describe_mentions_frequency(self):
        detections = runs("washing-machine-y", [START + timedelta(days=d) for d in range(7)])
        table = estimate_frequencies(detections, default_database(), observation_days=7)
        assert "washing-machine-y" in table.get("washing-machine-y").describe()

    def test_validation(self):
        with pytest.raises(DataError):
            estimate_frequencies([], default_database(), observation_days=0)

    def test_unknown_appliance_lookup_raises(self):
        table = estimate_frequencies([], default_database(), observation_days=7)
        with pytest.raises(KeyError):
            table.get("anything")


class TestScheduleMining:
    def test_consistent_evening_habit_found(self):
        starts = [START + timedelta(days=d, hours=19, minutes=30) for d in range(5)]
        detections = runs("dishwasher-z", starts)
        counts = count_day_types(START.date(), 5)
        mined = mine_schedule(detections, "dishwasher-z", counts)
        windows = mined.windows[DayType.WORKDAY]
        assert windows
        probe = time(19, 30)
        assert any(w.contains(probe) for w in windows)
        # Peak of the density lands near the habit time.
        assert abs(mined.peak_minute(DayType.WORKDAY) - (19 * 60 + 30)) <= 60

    def test_weekend_vs_workday_schedules_differ(self):
        workday_starts = [START + timedelta(days=d, hours=19) for d in range(0, 5)]
        weekend_starts = [
            START + timedelta(days=5, hours=13),
            START + timedelta(days=6, hours=13),
            START + timedelta(days=12, hours=13),
            START + timedelta(days=13, hours=13),
        ]
        detections = runs("dishwasher-z", workday_starts + weekend_starts)
        counts = count_day_types(START.date(), 14)
        mined = mine_schedule(detections, "dishwasher-z", counts)
        workday_peak = mined.peak_minute(DayType.WORKDAY)
        saturday_peak = mined.peak_minute(DayType.SATURDAY)
        assert abs(workday_peak - 19 * 60) < 90
        assert abs(saturday_peak - 13 * 60) < 90

    def test_expected_starts_per_day(self):
        starts = [START + timedelta(days=d, hours=10) for d in range(5)]
        detections = runs("vacuum-robot-x", starts, energy=0.7)
        counts = count_day_types(START.date(), 5)
        mined = mine_schedule(detections, "vacuum-robot-x", counts)
        assert mined.expected_starts(DayType.WORKDAY) == pytest.approx(1.0)

    def test_no_detections_empty_windows(self):
        counts = count_day_types(START.date(), 7)
        mined = mine_schedule([], "dishwasher-z", counts)
        for dtype in DayType:
            assert mined.windows[dtype] == []
            assert mined.expected_starts(dtype) == 0.0

    def test_as_usage_schedule_sampling(self):
        starts = [START + timedelta(days=d, hours=19, minutes=15) for d in range(10)]
        # Only workdays: skip weekends.
        starts = [s for s in starts if s.weekday() < 5]
        detections = runs("dishwasher-z", starts)
        counts = count_day_types(START.date(), 14)
        mined = mine_schedule(detections, "dishwasher-z", counts)
        schedule = mined.as_usage_schedule(DayType.WORKDAY)
        rng = np.random.default_rng(0)
        draws = [schedule.sample_start_minute(rng) for _ in range(100)]
        # Samples should concentrate around the 19:15 habit.
        assert np.median(np.abs(np.array(draws) - (19 * 60 + 15))) < 150

    def test_smoothing_validation(self):
        with pytest.raises(DataError):
            mine_schedule([], "x", {}, smoothing_minutes=0)

    def test_count_day_types(self):
        counts = count_day_types(date(2012, 3, 5), 7)
        assert counts[DayType.WORKDAY] == 5
        assert counts[DayType.SATURDAY] == 1
        assert counts[DayType.SUNDAY] == 1

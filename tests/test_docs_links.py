"""Docs link checker: every intra-repo markdown link must resolve.

The ``docs/`` tree, README, TESTING and PERFORMANCE cross-link each other
and the source tree; a renamed file silently strands those links.  This
test (also run as a dedicated CI step) walks every ``*.md`` in the
repository and fails on any relative link whose target does not exist.
External links (``http(s)://``, ``mailto:``) are out of scope — the check
must stay hermetic.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target) — excluding images' alt brackets
#: is unnecessary, image targets must exist too.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files() -> list[Path]:
    return [
        path
        for path in REPO_ROOT.rglob("*.md")
        if ".git" not in path.parts and ".pytest_cache" not in path.parts
    ]


def intra_repo_targets(path: Path) -> list[tuple[str, Path]]:
    """(raw link, resolved target) for every relative link in one file."""
    targets = []
    for raw in LINK.findall(path.read_text()):
        if raw.startswith(EXTERNAL) or raw.startswith("#"):
            continue
        resolved = (path.parent / raw.split("#", 1)[0]).resolve()
        targets.append((raw, resolved))
    return targets


def test_markdown_corpus_is_nonempty():
    files = markdown_files()
    assert len(files) >= 6, [p.name for p in files]
    # The documentation subsystem itself must be present and linked.
    names = {path.relative_to(REPO_ROOT).as_posix() for path in files}
    assert "docs/ARCHITECTURE.md" in names
    assert "docs/PAPER_MAPPING.md" in names


def test_no_dead_intra_repo_links():
    dead: list[str] = []
    for path in markdown_files():
        for raw, resolved in intra_repo_targets(path):
            if not resolved.exists():
                dead.append(f"{path.relative_to(REPO_ROOT)}: ({raw})")
    assert not dead, "dead intra-repo links:\n" + "\n".join(dead)

"""Extended property-based tests: scheduling, cleaning, bucketing, hierarchy.

Complements ``test_properties.py`` with invariants on the newer substrates:
water-filling stays within bounds and tracks the target, imputation never
invents negative load, per-minute→grid bucketing conserves energy, and
aggregation composes hierarchically (aggregates of aggregates still
disaggregate exactly — the multi-level aggregation MIRABEL [4] performs).
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.aggregation.aggregate import aggregate_group, disaggregate_schedule
from repro.extraction.frequency_based import slice_energies_on_grid
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.flexoffer.schedule import ScheduledFlexOffer, default_schedule
from repro.scheduling.greedy import _water_fill, greedy_schedule
from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis, axis_for_days
from repro.timeseries.clean import clip_outliers, fill_missing
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


class TestWaterFillProperties:
    @given(
        remaining=arrays(np.float64, 8, elements=st.floats(-5, 5, allow_nan=False)),
        lows=arrays(np.float64, 8, elements=st.floats(0, 1, allow_nan=False)),
        widths=arrays(np.float64, 8, elements=st.floats(0, 2, allow_nan=False)),
    )
    def test_within_bounds_and_optimal(self, remaining, lows, widths):
        highs = lows + widths
        filled = _water_fill(remaining, lows, highs)
        assert (filled >= lows - 1e-12).all()
        assert (filled <= highs + 1e-12).all()
        # Per-interval optimality: the fill is the projection of the target
        # onto [lo, hi], so no other feasible value is closer.
        clipped = np.clip(remaining, lows, highs)
        assert np.allclose(filled, clipped)

    @given(
        target_level=st.floats(0.0, 3.0, allow_nan=False),
        e=st.floats(0.5, 2.0, allow_nan=False),
    )
    @settings(deadline=None, max_examples=30)
    def test_greedy_schedule_energy_feasible(self, target_level, e):
        axis = axis_for_days(START, 1)
        target = TimeSeries.full(axis, target_level)
        offer = FlexOffer(
            earliest_start=START + timedelta(hours=2),
            latest_start=START + timedelta(hours=10),
            slices=(ProfileSlice(0.25 * e, e), ProfileSlice(0.25 * e, e)),
        )
        result = greedy_schedule([offer], target)
        assert len(result.schedules) == 1
        # ScheduledFlexOffer construction validates all bounds; reaching
        # here means the greedy placement was feasible.
        sched = result.schedules[0]
        assert offer.earliest_start <= sched.start <= offer.latest_start


class TestCleaningProperties:
    @given(
        values=arrays(np.float64, 96, elements=st.floats(0.0, 2.0, allow_nan=False)),
        gap_start=st.integers(0, 80),
        gap_len=st.integers(1, 15),
    )
    @settings(deadline=None, max_examples=50)
    def test_fill_missing_never_negative_and_preserves_present(
        self, values, gap_start, gap_len
    ):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        missing = np.zeros(96, dtype=bool)
        missing[gap_start : gap_start + gap_len] = True
        if missing.all():
            return
        damaged = values.copy()
        damaged[missing] = 0.0
        series = TimeSeries(axis, damaged)
        for method in ("interpolate", "daily-profile"):
            filled = fill_missing(series, missing, method=method)
            assert filled.is_nonnegative()
            # Present intervals are untouched.
            assert np.allclose(filled.values[~missing], damaged[~missing])

    @given(values=arrays(np.float64, 96, elements=st.floats(0.0, 1.0, allow_nan=False)))
    @settings(deadline=None, max_examples=50)
    def test_clip_outliers_never_raises_values(self, values):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        series = TimeSeries(axis, values)
        repaired, clipped = clip_outliers(series)
        assert (repaired.values <= series.values + 1e-12).all()
        assert clipped >= 0


class TestBucketingProperties:
    @given(
        length=st.integers(1, 300),
        start=st.integers(0, 2000),
        seed=st.integers(0, 10_000),
    )
    @settings(deadline=None, max_examples=50)
    def test_slice_bucketing_conserves_energy(self, length, start, seed):
        removal = np.random.default_rng(seed).uniform(0, 0.2, length)
        grid_index, energies = slice_energies_on_grid(removal, start)
        assert energies.sum() == pytest.approx(removal.sum())
        assert grid_index == start // 15
        # Bucket k covers minutes [15k, 15k+15) relative to the grid anchor.
        assert len(energies) >= int(np.ceil((start % 15 + length) / 15))


class TestHierarchicalAggregation:
    """MIRABEL aggregates in levels; level-2 must still disaggregate exactly."""

    def _leaf(self, offset_intervals: int, e: float) -> FlexOffer:
        est = START + FIFTEEN_MINUTES * offset_intervals
        return FlexOffer(
            earliest_start=est,
            latest_start=est + timedelta(hours=2),
            slices=(ProfileSlice(0.5 * e, 1.5 * e),),
        )

    def test_two_level_roundtrip(self):
        # Level 1: two groups of leaves.
        group_a = [self._leaf(0, 1.0), self._leaf(1, 2.0)]
        group_b = [self._leaf(0, 0.5), self._leaf(2, 1.5)]
        agg_a = aggregate_group(group_a)
        agg_b = aggregate_group(group_b)
        # Level 2: aggregate the aggregates.
        top = aggregate_group([agg_a.offer, agg_b.offer])

        schedule = default_schedule(top.offer, start=top.offer.earliest_start)
        level1 = disaggregate_schedule(top, schedule)
        assert len(level1) == 2
        total_level1 = sum(p.total_energy for p in level1)
        assert total_level1 == pytest.approx(schedule.total_energy)

        # Disaggregate each level-1 schedule to the leaves.
        leaves = []
        for agg, sched in zip((agg_a, agg_b), level1):
            leaves.extend(disaggregate_schedule(agg, sched))
        assert len(leaves) == 4
        assert sum(p.total_energy for p in leaves) == pytest.approx(
            schedule.total_energy
        )

    def test_two_level_flexibility_is_min_of_all(self):
        a = self._leaf(0, 1.0).with_time_flexibility(timedelta(hours=1))
        b = self._leaf(0, 1.0).with_time_flexibility(timedelta(hours=5))
        c = self._leaf(0, 1.0).with_time_flexibility(timedelta(hours=3))
        level1 = aggregate_group([a, b])
        top = aggregate_group([level1.offer, c])
        assert top.offer.time_flexibility == timedelta(hours=1)

"""Unit tests for :mod:`repro.appliances` (model, database, usage)."""

from __future__ import annotations

from datetime import time, timedelta

import numpy as np
import pytest

from repro.appliances.database import (
    TABLE1_NAMES,
    default_database,
    table1_database,
)
from repro.appliances.model import (
    ApplianceCategory,
    ApplianceSpec,
    flat_shape,
    phased_shape,
    ramped_shape,
)
from repro.appliances.usage import (
    MINUTES_PER_DAY,
    UsageFrequency,
    UsageSchedule,
    evening_schedule,
    night_schedule,
)
from repro.errors import DataError, ValidationError
from repro.timeseries.calendar import DailyWindow, DayType


class TestShapes:
    def test_flat_shape_normalised(self):
        shape = flat_shape(60)
        assert shape.shape == (60,)
        assert shape.sum() == pytest.approx(1.0)
        assert np.allclose(shape, shape[0])

    def test_phased_shape(self):
        shape = phased_shape([(10, 2.0), (20, 1.0)])
        assert shape.shape == (30,)
        assert shape.sum() == pytest.approx(1.0)
        assert shape[0] == pytest.approx(2 * shape[15])

    def test_ramped_shape_monotone(self):
        shape = ramped_shape(100, 1.0, 0.2)
        assert shape.sum() == pytest.approx(1.0)
        assert shape[0] > shape[-1]

    def test_invalid_shapes(self):
        with pytest.raises(ValidationError):
            flat_shape(0)
        with pytest.raises(ValidationError):
            phased_shape([])
        with pytest.raises(ValidationError):
            phased_shape([(0, 1.0)])
        with pytest.raises(ValidationError):
            ramped_shape(10, 1.0, -0.5)


class TestApplianceSpec:
    def make(self, **overrides) -> ApplianceSpec:
        defaults = dict(
            name="test-appliance",
            manufacturer="Test",
            category=ApplianceCategory.WET,
            energy_min_kwh=1.0,
            energy_max_kwh=2.0,
            shape=flat_shape(60),
            flexible=True,
            time_flexibility=timedelta(hours=6),
        )
        defaults.update(overrides)
        return ApplianceSpec(**defaults)

    def test_derived_attributes(self):
        spec = self.make()
        assert spec.cycle_minutes == 60
        assert spec.cycle_duration == timedelta(hours=1)
        assert spec.typical_energy_kwh == 1.5
        # flat 1.5 kWh over 1 h => 1.5 kW peak
        assert spec.peak_power_kw == pytest.approx(1.5)

    def test_shape_normalised_defensively(self):
        spec = self.make(shape=np.ones(30) * 5.0)
        assert spec.shape.sum() == pytest.approx(1.0)

    def test_invalid_energy_range(self):
        with pytest.raises(ValidationError):
            self.make(energy_min_kwh=3.0, energy_max_kwh=2.0)
        with pytest.raises(ValidationError):
            self.make(energy_min_kwh=0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            self.make(name="")

    def test_negative_shape_rejected(self):
        bad = np.ones(10)
        bad[3] = -1.0
        with pytest.raises(ValidationError):
            self.make(shape=bad)

    def test_energy_profile_scaling(self):
        spec = self.make()
        profile = spec.energy_profile_minutes(1.5)
        assert profile.sum() == pytest.approx(1.5)
        with pytest.raises(ValidationError):
            spec.energy_profile_minutes(5.0)

    def test_profile_bounds(self):
        spec = self.make()
        lo, hi = spec.profile_bounds_minutes()
        assert lo.sum() == pytest.approx(1.0)
        assert hi.sum() == pytest.approx(2.0)

    def test_sample_energy_in_range(self):
        spec = self.make()
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert 1.0 <= spec.sample_energy(rng) <= 2.0

    def test_matches_energy_with_slack(self):
        spec = self.make()
        assert spec.matches_energy(1.5)
        assert spec.matches_energy(0.8)   # within slack
        assert not spec.matches_energy(10.0)


class TestDatabase:
    def test_table1_contains_exactly_paper_rows(self):
        db = table1_database()
        assert tuple(db.names()) == TABLE1_NAMES
        # Energy ranges exactly as printed in Table 1.
        assert db.get("vacuum-robot-x").energy_min_kwh == 0.5
        assert db.get("vacuum-robot-x").energy_max_kwh == 1.0
        assert db.get("washing-machine-y").energy_min_kwh == 1.2
        assert db.get("washing-machine-y").energy_max_kwh == 3.0
        assert db.get("dishwasher-z").energy_min_kwh == 1.2
        assert db.get("dishwasher-z").energy_max_kwh == 2.0
        assert db.get("ev-small").energy_min_kwh == 30.0
        assert db.get("ev-small").energy_max_kwh == 50.0
        assert db.get("ev-medium").energy_min_kwh == 50.0
        assert db.get("ev-medium").energy_max_kwh == 60.0
        assert db.get("ev-large").energy_min_kwh == 60.0
        assert db.get("ev-large").energy_max_kwh == 70.0

    def test_vacuum_robot_22h_flexibility(self):
        """The paper's §4.1 worked example: once daily, 22 h flexibility."""
        spec = table1_database().get("vacuum-robot-x")
        assert spec.time_flexibility == timedelta(hours=22)
        assert spec.frequency.uses_per_week == pytest.approx(7.0)

    def test_default_database_superset(self):
        db = default_database()
        for name in TABLE1_NAMES:
            assert name in db
        assert len(db) > len(TABLE1_NAMES)

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            default_database().get("toaster-9000")

    def test_by_category(self):
        db = default_database()
        wet = db.by_category(ApplianceCategory.WET)
        assert {s.name for s in wet} >= {"washing-machine-y", "dishwasher-z"}

    def test_flexible_filter(self):
        db = default_database()
        names = {s.name for s in db.flexible()}
        assert "washing-machine-y" in names
        assert "oven" not in names  # dinner is not shiftable

    def test_candidates_for_energy(self):
        db = table1_database()
        names = {s.name for s in db.candidates_for_energy(1.5)}
        assert "washing-machine-y" in names
        assert "dishwasher-z" in names
        assert "ev-small" not in names

    def test_restricted(self):
        db = default_database().restricted(["oven", "television"])
        assert len(db) == 2
        with pytest.raises(KeyError):
            default_database().restricted(["not-a-thing"])

    def test_table_rows_shape(self):
        rows = table1_database().table_rows()
        assert len(rows) == 6
        name, manufacturer, emin, emax, cycle = rows[0]
        assert isinstance(name, str) and isinstance(cycle, int)


class TestUsageFrequency:
    def test_expected_uses_preserves_weekly_total(self):
        freq = UsageFrequency(
            7.0, day_type_weights={DayType.WORKDAY: 0.5, DayType.SATURDAY: 2.0, DayType.SUNDAY: 2.0}
        )
        weekly = (
            5 * freq.expected_uses(DayType.WORKDAY)
            + freq.expected_uses(DayType.SATURDAY)
            + freq.expected_uses(DayType.SUNDAY)
        )
        assert weekly == pytest.approx(7.0)

    def test_weekend_skew_direction(self):
        freq = UsageFrequency(
            4.0, day_type_weights={DayType.WORKDAY: 0.5, DayType.SATURDAY: 2.0, DayType.SUNDAY: 2.0}
        )
        assert freq.expected_uses(DayType.SATURDAY) > freq.expected_uses(DayType.WORKDAY)

    def test_sampling_mean(self):
        freq = UsageFrequency(7.0)
        rng = np.random.default_rng(0)
        draws = [freq.sample_uses(DayType.WORKDAY, rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(1.0, abs=0.1)

    def test_zero_frequency(self):
        freq = UsageFrequency(0.0)
        rng = np.random.default_rng(0)
        assert freq.sample_uses(DayType.WORKDAY, rng) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            UsageFrequency(-1.0)
        with pytest.raises(ValidationError):
            UsageFrequency(1.0, day_type_weights={DayType.WORKDAY: -2.0})

    def test_describe(self):
        assert UsageFrequency(7.0).describe() == "daily"
        assert "x/week" in UsageFrequency(3.0).describe()
        assert "x/month" in UsageFrequency(0.5).describe()


class TestUsageSchedule:
    def test_empty_schedule_uniform(self):
        schedule = UsageSchedule()
        rng = np.random.default_rng(0)
        draws = [schedule.sample_start_minute(rng) for _ in range(2000)]
        assert 0 <= min(draws) and max(draws) < MINUTES_PER_DAY
        assert np.std(draws) > 300  # roughly uniform spread

    def test_windowed_sampling_stays_inside(self):
        schedule = UsageSchedule(
            windows=((DailyWindow(time(9, 0), time(12, 0)), 1.0),)
        )
        rng = np.random.default_rng(1)
        for _ in range(200):
            minute = schedule.sample_start_minute(rng)
            assert 9 * 60 <= minute < 12 * 60

    def test_wrapping_window_sampling(self):
        rng = np.random.default_rng(2)
        schedule = night_schedule()  # 21:00-01:00
        for _ in range(200):
            minute = schedule.sample_start_minute(rng)
            assert minute >= 21 * 60 or minute < 1 * 60

    def test_weighting_prefers_heavier_window(self):
        schedule = evening_schedule()  # evening weight 3, morning weight 1
        rng = np.random.default_rng(3)
        draws = np.array([schedule.sample_start_minute(rng) for _ in range(2000)])
        evening = np.mean((draws >= 17 * 60) & (draws < 22 * 60))
        assert evening == pytest.approx(0.75, abs=0.05)

    def test_density_sums_to_one(self):
        for schedule in (UsageSchedule(), evening_schedule(), night_schedule()):
            assert schedule.start_density_per_minute().sum() == pytest.approx(1.0)

    def test_probability_in_window(self):
        schedule = evening_schedule()
        p = schedule.probability_in_window(DailyWindow(time(17, 0), time(22, 0)))
        assert p == pytest.approx(0.75, abs=1e-9)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            UsageSchedule(windows=((DailyWindow(time(9, 0), time(10, 0)), -1.0),))

"""Window-boundary audit of the rolling backtest (golden-pinned).

``rolling_backtest`` and ``residual_blocks`` walk the same rolling-origin
folds, and the quantile-fan machinery (and through it robust scheduling)
trusts their exact boundary behaviour: where the first fold starts, how
origins slide, that a trailing remainder shorter than one horizon is
dropped, and that degenerate windows are rejected instead of looping
forever.  These tests pin all of that, plus a golden regression of the
metric values on a fixed noisy series so silent fold drift fails loudly.

Regenerate the golden (after an *intentional* boundary change) with::

    PYTHONPATH=src python tests/test_forecasting_backtest.py --regenerate
"""

from __future__ import annotations

import json
from datetime import datetime
from pathlib import Path

import numpy as np
import pytest

from repro.errors import DataError
from repro.forecasting import residual_blocks, rolling_backtest
from repro.forecasting.models import persistence, seasonal_naive
from repro.timeseries.axis import axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)
GOLDEN = Path(__file__).parent / "data" / "golden" / "backtest_boundaries.json"


def noisy_seasonal(intervals: int, seed: int = 11) -> TimeSeries:
    axis = axis_for_days(START, (intervals + 95) // 96).sub_axis(0, intervals)
    t = np.arange(intervals)
    values = 2.0 + np.sin(2 * np.pi * t / 96)
    values += np.random.default_rng(seed).normal(0, 0.05, intervals)
    return TimeSeries(axis, values, "load")


class FoldProbe:
    """A 'model' that records every (train-length, horizon) it sees."""

    __name__ = "probe"

    def __init__(self):
        self.calls: list[tuple[int, int]] = []

    def __call__(self, history: TimeSeries, horizon: int) -> TimeSeries:
        self.calls.append((len(history), horizon))
        from repro.timeseries.axis import TimeAxis

        axis = TimeAxis(history.axis.end, history.axis.resolution, horizon)
        return TimeSeries(axis, np.full(horizon, history.values[-1]))


class TestFoldBoundaries:
    def test_first_fold_trains_on_exact_prefix(self):
        probe = FoldProbe()
        rolling_backtest(probe, noisy_seasonal(300), train_intervals=100, horizon=50)
        assert probe.calls[0] == (100, 50)

    def test_origins_slide_by_step(self):
        probe = FoldProbe()
        report = rolling_backtest(
            probe, noisy_seasonal(300), train_intervals=100, horizon=50, step=25
        )
        # Origins 100, 125, ..., 250 — the last full horizon ends at 300.
        assert [train for train, _ in probe.calls] == [100, 125, 150, 175, 200, 225, 250]
        assert report.folds == len(probe.calls)

    def test_step_defaults_to_horizon(self):
        probe = FoldProbe()
        rolling_backtest(probe, noisy_seasonal(300), train_intervals=100, horizon=50)
        assert [train for train, _ in probe.calls] == [100, 150, 200, 250]

    def test_exact_fit_yields_one_fold(self):
        probe = FoldProbe()
        report = rolling_backtest(
            probe, noisy_seasonal(150), train_intervals=100, horizon=50
        )
        assert report.folds == 1
        assert probe.calls == [(100, 50)]

    def test_trailing_remainder_is_dropped(self):
        # 100 train + 50 fold + 49 remainder: the remainder is shorter than
        # one horizon, so it must be dropped, not scored on a short window.
        probe = FoldProbe()
        report = rolling_backtest(
            probe, noisy_seasonal(199), train_intervals=100, horizon=50
        )
        assert report.folds == 1
        assert probe.calls == [(100, 50)]

    def test_one_more_interval_adds_the_fold(self):
        report = rolling_backtest(
            FoldProbe(), noisy_seasonal(200), train_intervals=100, horizon=50
        )
        assert report.folds == 2

    def test_too_short_raises(self):
        with pytest.raises(DataError):
            rolling_backtest(
                persistence, noisy_seasonal(149), train_intervals=100, horizon=50
            )

    def test_residual_blocks_walk_identical_folds(self):
        series = noisy_seasonal(300)
        probe = FoldProbe()
        rolling_backtest(probe, series, train_intervals=100, horizon=50, step=25)
        blocks = residual_blocks(
            series, persistence, horizon=50, train_intervals=100, step=25
        )
        assert blocks.shape == (len(probe.calls), 50)


class TestDegenerateWindows:
    """Windows that once slipped through and looped forever must raise."""

    def test_zero_horizon_raises(self):
        with pytest.raises(DataError):
            rolling_backtest(persistence, noisy_seasonal(200), 100, 0)

    def test_zero_step_raises(self):
        with pytest.raises(DataError):
            rolling_backtest(persistence, noisy_seasonal(200), 100, 50, step=0)

    def test_zero_train_raises(self):
        with pytest.raises(DataError):
            rolling_backtest(persistence, noisy_seasonal(200), 0, 50)

    def test_residual_blocks_reject_the_same_windows(self):
        series = noisy_seasonal(200)
        with pytest.raises(DataError):
            residual_blocks(series, persistence, horizon=0)
        with pytest.raises(DataError):
            residual_blocks(series, persistence, horizon=50, step=0)
        with pytest.raises(DataError):
            residual_blocks(series, persistence, horizon=50, train_intervals=0)


def golden_payload() -> dict:
    """The pinned backtest numbers: fixed series, two models, two windows."""
    series = noisy_seasonal(96 * 6)
    payload = {}
    for name, model in (("seasonal-naive", seasonal_naive), ("persistence", persistence)):
        for label, step in (("non-overlapping", None), ("sliding-48", 48)):
            report = rolling_backtest(
                model, series, train_intervals=96 * 2, horizon=96, step=step, name=name
            )
            payload[f"{name}/{label}"] = {
                "folds": report.folds,
                "mae": round(report.mae, 12),
                "rmse": round(report.rmse, 12),
                "mape": round(report.mape, 12),
            }
    return payload


class TestGoldenRegression:
    def test_backtest_matches_golden(self):
        golden = json.loads(GOLDEN.read_text())
        payload = golden_payload()
        assert set(payload) == set(golden)
        for key, entry in payload.items():
            assert entry["folds"] == golden[key]["folds"], key
            for metric in ("mae", "rmse", "mape"):
                assert entry[metric] == pytest.approx(
                    golden[key][metric], rel=1e-9
                ), f"{key}:{metric}"


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN.write_text(json.dumps(golden_payload(), indent=2) + "\n")
        print(f"wrote {GOLDEN}")

"""Tests for the multi-tariff extraction approach (§3.3)."""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.errors import ExtractionError
from repro.extraction.multitariff import (
    MultiTariffExtractor,
    typical_daily_profiles_by_day_type,
)
from repro.extraction.params import FlexOfferParams
from repro.timeseries.calendar import DayType
from repro.timeseries.resample import downsample_sum
from repro.timeseries.axis import FIFTEEN_MINUTES


class TestTypicalProfiles:
    def test_profiles_for_all_day_types(self, tariff_pair):
        profiles = typical_daily_profiles_by_day_type(tariff_pair.single.metered())
        assert set(profiles) == set(DayType)
        for profile in profiles.values():
            assert profile.shape == (96,)
            assert (profile >= 0).all()

    def test_mean_profile_carries_sparse_usage(self, tariff_pair):
        """The mean keeps washer/dishwasher mass that a median would drop."""
        profiles = typical_daily_profiles_by_day_type(tariff_pair.single.metered())
        workday = profiles[DayType.WORKDAY]
        reference = tariff_pair.single.metered()
        per_day = reference.axis.intervals_per_day
        whole = reference.axis.length // per_day
        matrix = reference.values[: whole * per_day].reshape(whole, per_day)
        median = np.median(matrix, axis=0)
        # Appliance mass makes the mean strictly heavier than the median.
        assert workday.sum() > median.sum()

    def test_too_short_reference_raises(self, tariff_pair):
        short = tariff_pair.single.metered().slice(0, 50)
        with pytest.raises(ExtractionError):
            typical_daily_profiles_by_day_type(short)


class TestMultiTariffExtractor:
    @pytest.fixture()
    def extraction(self, tariff_pair):
        extractor = MultiTariffExtractor(
            reference=tariff_pair.single.metered(), scheme=tariff_pair.scheme
        )
        return extractor.extract(tariff_pair.multi.metered(), np.random.default_rng(0))

    def test_energy_conservation(self, extraction):
        assert extraction.energy_conservation_error() < 1e-6

    def test_reference_passed_through_unchanged(self, extraction, tariff_pair):
        """Paper: 'outputs unchanged historical time series ... one tariff'."""
        assert extraction.extras["reference"] == tariff_pair.single.metered()

    def test_offers_touch_low_tariff_windows(self, extraction, tariff_pair):
        """One end of each offer's start window is the observed low-tariff run.

        (Which end depends on whether the behavioural shift wrapped past
        midnight: an evening run delayed into the small hours shows up in the
        *next* day window, where the deficit lies later than the excess.)
        """
        scheme = tariff_pair.scheme
        assert extraction.offers
        for offer in extraction.offers:
            assert scheme.is_low(offer.earliest_start) or scheme.is_low(offer.latest_start)

    def test_recovers_majority_of_shifted_energy(self, extraction, tariff_pair):
        true_shift = tariff_pair.shifted_energy_kwh
        assert true_shift > 0
        assert extraction.extracted_energy >= 0.4 * true_shift
        assert extraction.extracted_energy <= 1.5 * true_shift

    def test_time_flexibility_spans_shift(self, extraction):
        """Offers demonstrate behavioural shiftability: non-trivial windows."""
        flexes = [o.time_flexibility for o in extraction.offers]
        assert max(flexes) >= timedelta(hours=1)

    def test_modified_series_nonnegative(self, extraction):
        assert extraction.modified.is_nonnegative()

    def test_no_response_no_offers(self, tariff_pair):
        """Extracting from the *unchanged* series finds ~nothing."""
        extractor = MultiTariffExtractor(
            reference=tariff_pair.single.metered(), scheme=tariff_pair.scheme
        )
        result = extractor.extract(tariff_pair.single.metered(), np.random.default_rng(0))
        # Day-to-day noise can produce a few small offers, but the energy
        # must be far below what the behavioural shift produces.
        shifted = MultiTariffExtractor(
            reference=tariff_pair.single.metered(), scheme=tariff_pair.scheme
        ).extract(tariff_pair.multi.metered(), np.random.default_rng(0))
        assert result.extracted_energy < 0.5 * max(shifted.extracted_energy, 1e-9)

    def test_resolution_mismatch_rejected(self, tariff_pair):
        from repro.timeseries.axis import ONE_HOUR

        hourly_ref = downsample_sum(tariff_pair.single.metered(), ONE_HOUR)
        extractor = MultiTariffExtractor(reference=hourly_ref, scheme=tariff_pair.scheme)
        with pytest.raises(ExtractionError):
            extractor.extract(tariff_pair.multi.metered(), np.random.default_rng(0))

    def test_max_offers_per_day_cap(self, tariff_pair):
        extractor = MultiTariffExtractor(
            reference=tariff_pair.single.metered(),
            scheme=tariff_pair.scheme,
            max_offers_per_day=1,
        )
        result = extractor.extract(tariff_pair.multi.metered(), np.random.default_rng(0))
        days = 28
        assert len(result.offers) <= days

    def test_day_reports_in_extras(self, extraction):
        days = extraction.extras["days"]
        assert len(days) == 28
        for report in days:
            assert report["shifted_kwh"] <= report["excess_low_kwh"] + 1e-9
            assert report["shifted_kwh"] <= report["deficit_high_kwh"] + 1e-9

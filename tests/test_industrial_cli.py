"""Tests for the industrial-consumer extension and the CLI."""

from __future__ import annotations

import json
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.errors import ValidationError
from repro.extraction import (
    FlexOfferParams,
    FrequencyBasedExtractor,
    PeakBasedExtractor,
)
from repro.simulation.industrial import (
    FactoryConfig,
    factory_base_load,
    industrial_catalogue,
    simulate_factory,
)
from repro.timeseries.axis import ONE_MINUTE, TimeAxis

START = datetime(2012, 3, 5)  # Monday


@pytest.fixture(scope="module")
def factory_trace():
    return simulate_factory(
        FactoryConfig(factory_id="plant-1"), START, 7, np.random.default_rng(0)
    )


class TestIndustrialCatalogue:
    def test_catalogue_contents(self):
        catalogue = industrial_catalogue()
        assert "batch-furnace" in catalogue
        assert catalogue.get("batch-furnace").flexible
        assert not catalogue.get("packaging-line").flexible

    def test_industrial_scale(self):
        catalogue = industrial_catalogue()
        for spec in catalogue:
            assert spec.energy_min_kwh >= 40.0  # orders beyond household scale

    def test_weekday_only_processes(self):
        from repro.timeseries.calendar import DayType

        furnace = industrial_catalogue().get("batch-furnace")
        assert furnace.frequency.expected_uses(DayType.SATURDAY) == 0.0
        assert furnace.frequency.expected_uses(DayType.WORKDAY) > 0.9


class TestFactorySimulation:
    def test_scale_dwarfs_households(self, factory_trace):
        daily_kwh = factory_trace.metered().total() / 7
        assert daily_kwh > 500  # households are ~10 kWh/day

    def test_shift_structure(self):
        config = FactoryConfig(factory_id="p", noise_std_kw=0.0)
        axis = TimeAxis(START, ONE_MINUTE, 7 * 24 * 60)
        base = factory_base_load(config, axis, np.random.default_rng(0))
        # Monday 10:00 carries shift load; Monday 03:00 only floor load.
        monday_10 = base.value_at(START + timedelta(hours=10)) * 60
        monday_03 = base.value_at(START + timedelta(hours=3)) * 60
        assert monday_10 == pytest.approx(100.0)
        assert monday_03 == pytest.approx(40.0)
        # Saturday 10:00: floor only (no weekend shift).
        saturday_10 = base.value_at(START + timedelta(days=5, hours=10)) * 60
        assert saturday_10 == pytest.approx(40.0)

    def test_trace_consistency(self, factory_trace):
        reconstructed = factory_trace.base_load.values.copy()
        for series in factory_trace.per_appliance.values():
            reconstructed += series.values
        assert np.allclose(reconstructed, factory_trace.total.values)

    def test_flexible_share_realistic(self, factory_trace):
        assert 0.02 < factory_trace.flexible_share < 0.6

    def test_validation(self):
        with pytest.raises(ValidationError):
            FactoryConfig(factory_id="")
        with pytest.raises(ValidationError):
            FactoryConfig(factory_id="p", floor_load_kw=-1)
        with pytest.raises(ValidationError):
            simulate_factory(
                FactoryConfig(factory_id="p"), START, 0, np.random.default_rng(0)
            )


class TestExtractionOnFactories:
    def test_peak_based_runs_unchanged(self, factory_trace):
        extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
        result = extractor.extract(factory_trace.metered(), np.random.default_rng(1))
        assert len(result.offers) >= 5
        assert result.energy_conservation_error() < 1e-6
        # Industrial offers carry industrial energies.
        assert max(o.profile_energy_max for o in result.offers) > 50.0

    def test_frequency_based_with_industrial_catalogue(self, factory_trace):
        extractor = FrequencyBasedExtractor(database=industrial_catalogue())
        result = extractor.extract(factory_trace.total, np.random.default_rng(1))
        shortlist = result.extras["shortlist"]
        listed = {e.appliance for e in shortlist}
        true_processes = {a.appliance for a in factory_trace.activations}
        assert listed & true_processes
        assert result.energy_conservation_error() < 1e-6


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--out", "/tmp/x"])
        assert args.command == "simulate"
        args = parser.parse_args(["evaluate", "--households", "3"])
        assert args.households == 3

    def test_simulate_and_extract_roundtrip(self, tmp_path):
        out_dir = tmp_path / "data"
        code = main([
            "simulate", "--households", "2", "--days", "2",
            "--seed", "1", "--out", str(out_dir),
        ])
        assert code == 0
        csvs = sorted(out_dir.glob("*.csv"))
        assert len(csvs) == 2

        offers_path = tmp_path / "offers.json"
        code = main([
            "extract", "--input", str(csvs[0]),
            "--approach", "peak-based", "--share", "0.05",
            "--out", str(offers_path),
        ])
        assert code == 0
        payload = json.loads(offers_path.read_text())
        assert isinstance(payload, list) and payload
        assert all("slices" in offer for offer in payload)

    def test_extract_basic_approach(self, tmp_path):
        out_dir = tmp_path / "data"
        main(["simulate", "--households", "1", "--days", "1", "--out", str(out_dir)])
        csv_path = next(out_dir.glob("*.csv"))
        offers_path = tmp_path / "basic.json"
        code = main([
            "extract", "--input", str(csv_path),
            "--approach", "basic", "--out", str(offers_path),
        ])
        assert code == 0
        assert json.loads(offers_path.read_text())

    def test_extract_missing_input_fails_cleanly(self, tmp_path, capsys):
        code = main([
            "extract", "--input", str(tmp_path / "nope.csv"),
            "--out", str(tmp_path / "offers.json"),
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_evaluate_prints_table(self, capsys):
        code = main(["evaluate", "--households", "2", "--days", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "extractor" in out
        assert "peak-based" in out

    def test_figures_prints_walkthrough(self, capsys):
        code = main(["figures"])
        assert code == 0
        out = capsys.readouterr().out
        assert "39.02" in out

"""Durable sessions: WAL journal, snapshot compaction, crash recovery.

The contract under test (docs/ARCHITECTURE.md, "Durability"): every
session event is journaled — checksummed, sequenced, fsynced on commit —
*before* it is applied, snapshots compact the log without losing history,
and killing the process at any event boundary (including mid-append: a
torn final record) resumes to a state bitwise identical to the
uninterrupted run.  The full every-boundary sweep over the CI event
stream and the subprocess SIGKILL drills are tier-2; the core journal
semantics run on every tier-1 pass.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np
import pytest

from repro.errors import PersistenceError, SessionError, SessionReplayError
from repro.evaluation.comparison import input_series_for
from repro.session import (
    FlexibilitySession,
    SessionJournal,
    load_session_events,
    replay_session,
    restore_session,
    session_for_spec,
)
from repro.session.persistence import WAL_NAME, decode_state, encode_state
from repro.testing import faults

EVENTS_FILE = Path(__file__).parent.parent / "examples" / "specs" / "session_events.json"


@pytest.fixture(scope="module")
def stream():
    """The CI event stream: spec, fleet, per-household inputs, events."""
    spec, events = load_session_events(EVENTS_FILE)
    from repro.simulation.dataset import generate_fleet

    scenario = spec.scenario
    fleet = generate_fleet(
        scenario.households, scenario.start, scenario.days, seed=scenario.seed
    )
    probe = session_for_spec(spec, fleet=fleet)
    inputs = [input_series_for(probe.extractor, trace) for trace in fleet]
    return spec, fleet, inputs, events


def _fresh(stream):
    spec, fleet, _, _ = stream
    return session_for_spec(spec, fleet=fleet)


def _apply(session, stream, start=0, stop=None):
    _, _, inputs, events = stream
    for event in events[start : len(events) if stop is None else stop]:
        kind = event["type"]
        if kind == "ingest":
            first, count = event["first"], event["count"]
            values = inputs[event["household"]].values[first : first + count]
            session.ingest(event["household"], first, values)
        elif kind == "replan":
            session.replan()
        else:
            session.commit(datetime.fromisoformat(event["through"]))


@pytest.fixture(scope="module")
def uninterrupted_final(stream):
    session = _fresh(stream)
    _apply(session, stream)
    return session.snapshot().to_dict()


# ---------------------------------------------------------------------- #
# Journal mechanics
# ---------------------------------------------------------------------- #


class TestJournal:
    def test_create_append_reopen(self, tmp_path):
        journal = SessionJournal.create(tmp_path, spec={"name": "x"})
        assert journal.last_seq == 0
        assert journal.append("ingest", {"household": 0}) == 1
        assert journal.append("commit", {"through": "t"}, durable=True) == 2
        journal.close()
        reopened = SessionJournal.open(tmp_path)
        assert reopened.last_seq == 2
        assert reopened.spec == {"name": "x"}
        records = list(reopened.tail(0))
        assert [r["type"] for r in records] == ["ingest", "commit"]
        assert [r["seq"] for r in records] == [1, 2]
        assert list(reopened.tail(1)) == [records[1]]

    def test_create_refuses_existing_journal(self, tmp_path):
        SessionJournal.create(tmp_path)
        with pytest.raises(PersistenceError, match="already holds a session journal"):
            SessionJournal.create(tmp_path)

    def test_create_validates_snapshot_every(self, tmp_path):
        with pytest.raises(PersistenceError, match="snapshot_every"):
            SessionJournal.create(tmp_path, snapshot_every=0)

    def test_append_rejects_unknown_event_type(self, tmp_path):
        journal = SessionJournal.create(tmp_path)
        with pytest.raises(PersistenceError, match="cannot journal"):
            journal.append("checkpoint", {})

    def test_open_requires_a_journal(self, tmp_path):
        with pytest.raises(PersistenceError, match="no session journal"):
            SessionJournal.open(tmp_path / "nowhere")

    def test_torn_final_record_is_truncated(self, tmp_path):
        journal = SessionJournal.create(tmp_path)
        journal.append("ingest", {"household": 0})
        journal.append("replan", {})
        journal.close()
        wal = tmp_path / WAL_NAME
        intact = wal.read_bytes()
        # Die mid-append: half an unterminated record at the tail.
        wal.write_bytes(intact + b'{"seq": 3, "type": "ingest", "da')
        reopened = SessionJournal.open(tmp_path)
        assert reopened.last_seq == 2
        assert wal.read_bytes() == intact  # the torn bytes are gone
        # The journal keeps appending cleanly past the truncation.
        assert reopened.append("replan", {}) == 3

    def test_corrupt_record_mid_log_refuses_recovery(self, tmp_path):
        journal = SessionJournal.create(tmp_path)
        journal.append("ingest", {"household": 0})
        journal.append("replan", {})
        journal.close()
        wal = tmp_path / WAL_NAME
        lines = wal.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"ingest"', b'"txegni"')  # checksum breaks
        wal.write_bytes(b"".join(lines))
        with pytest.raises(PersistenceError, match="corrupt record mid-log"):
            SessionJournal.open(tmp_path)

    def test_non_monotonic_seq_refused(self, tmp_path):
        journal = SessionJournal.create(tmp_path)
        journal.append("replan", {})
        journal.close()
        wal = tmp_path / WAL_NAME
        lines = wal.read_bytes().splitlines(keepends=True)
        wal.write_bytes(b"".join(lines) + lines[1] + lines[1])  # replayed line
        with pytest.raises(PersistenceError, match="sequence went backwards"):
            SessionJournal.open(tmp_path)

    def test_snapshot_compaction_prunes_log_and_older_snapshots(
        self, tmp_path, stream
    ):
        session = _fresh(stream)
        session.attach_journal(SessionJournal.create(tmp_path, snapshot_every=1))
        _apply(session, stream, stop=3)  # ingest, ingest, replan -> snapshot
        snapshots = sorted(tmp_path.glob("snapshot-*.json"))
        assert [p.name for p in snapshots] == ["snapshot-00000003.json"]
        # The snapshot covers seq 1-3: the WAL keeps only the header.
        assert list(session.journal.tail(0)) == []
        assert session.journal.last_seq == 3
        _apply(session, stream, start=3, stop=6)  # two ingests + replan
        snapshots = sorted(tmp_path.glob("snapshot-*.json"))
        assert [p.name for p in snapshots] == ["snapshot-00000006.json"]
        reopened = SessionJournal.open(tmp_path)
        assert reopened.last_seq == 6
        seq, _ = reopened.latest_snapshot()
        assert seq == 6

    def test_torn_snapshot_is_ignored_in_favour_of_older_state(self, tmp_path):
        journal = SessionJournal.create(tmp_path)
        journal.append("replan", {})
        path = journal.write_snapshot({"fake": "state"})
        journal.append("replan", {})
        # A snapshot that died mid-write: valid JSON prefix, bad checksum.
        (tmp_path / "snapshot-00000002.json").write_text('{"version": 1, "seq"')
        assert journal.latest_snapshot() == (1, {"fake": "state"})
        assert path.exists()

    def test_attach_requires_pristine_session_and_fresh_journal(
        self, tmp_path, stream
    ):
        used = _fresh(stream)
        _apply(used, stream, stop=1)
        with pytest.raises(PersistenceError, match="mid-session"):
            used.attach_journal(SessionJournal.create(tmp_path / "a"))
        stale = SessionJournal.create(tmp_path / "b")
        stale.append("replan", {})
        with pytest.raises(PersistenceError, match="already holds events"):
            _fresh(stream).attach_journal(stale)
        attached = _fresh(stream)
        attached.attach_journal(SessionJournal.create(tmp_path / "c"))
        with pytest.raises(PersistenceError, match="already has a journal"):
            attached.attach_journal(SessionJournal.create(tmp_path / "d"))


# ---------------------------------------------------------------------- #
# State encoding
# ---------------------------------------------------------------------- #


class TestStateCodec:
    def test_encode_decode_round_trips_bitwise(self, stream):
        session = _fresh(stream)
        _apply(session, stream)
        payload = encode_state(session)
        # The payload must survive the JSON wire (floats via repr).
        payload = json.loads(json.dumps(payload))
        restored = _fresh(stream)
        restored._replaying = True
        decode_state(restored, payload)
        restored._replaying = False
        assert restored.snapshot().to_dict() == session.snapshot().to_dict()
        for live, original in zip(
            restored.state.households, session.state.households
        ):
            np.testing.assert_array_equal(live.values, original.values)
            np.testing.assert_array_equal(live.covered, original.covered)
            assert live.dirty == original.dirty
        np.testing.assert_array_equal(
            restored.state.committed_demand, session.state.committed_demand
        )
        assert restored.state.commit_boundary == session.state.commit_boundary

    def test_decode_refuses_mismatched_fleet(self, stream):
        session = _fresh(stream)
        _apply(session, stream)
        payload = encode_state(session)
        spec, fleet, _, _ = stream
        smaller = FlexibilitySession.for_fleet(
            fleet.traces[:1], extractor=session.extractor, seed=session.seed
        )
        with pytest.raises(PersistenceError, match="household"):
            decode_state(smaller, payload)


# ---------------------------------------------------------------------- #
# Recovery
# ---------------------------------------------------------------------- #


class TestRecovery:
    def _crash_at(self, stream, tmp_path, boundary, snapshot_every=2):
        session = _fresh(stream)
        session.attach_journal(
            SessionJournal.create(tmp_path, snapshot_every=snapshot_every)
        )
        _apply(session, stream, stop=boundary)
        session.journal.close()  # the process "dies" here

    def test_resume_mid_stream_matches_uninterrupted(
        self, tmp_path, stream, uninterrupted_final
    ):
        self._crash_at(stream, tmp_path, boundary=4)
        recovered = restore_session(_fresh(stream), tmp_path)
        assert recovered.journal.last_seq == 4
        _apply(recovered, stream, start=4)
        assert recovered.snapshot().to_dict() == uninterrupted_final

    @pytest.mark.tier2
    @pytest.mark.parametrize("boundary", range(8))
    @pytest.mark.parametrize("snapshot_every", [1, 2, 100])
    def test_every_event_boundary_recovers_bitwise(
        self, tmp_path, stream, uninterrupted_final, boundary, snapshot_every
    ):
        # The acceptance sweep: kill at *every* boundary of the CI event
        # stream, under snapshot cadences that recover via snapshot-only,
        # snapshot + WAL tail, and pure log replay.
        self._crash_at(stream, tmp_path, boundary, snapshot_every=snapshot_every)
        recovered = restore_session(_fresh(stream), tmp_path)
        _apply(recovered, stream, start=boundary)
        assert recovered.snapshot().to_dict() == uninterrupted_final

    def test_torn_wal_append_recovers_to_previous_boundary(
        self, tmp_path, stream, uninterrupted_final
    ):
        session = _fresh(stream)
        session.attach_journal(SessionJournal.create(tmp_path, snapshot_every=2))
        _apply(session, stream, stop=3)
        with faults.inject_faults(faults.FaultSpec("wal-append", mode="torn", index=4)):
            with pytest.raises(faults.InjectedCrash, match="torn WAL append"):
                _apply(session, stream, start=3, stop=4)
        # The event died before applying: the journal holds 3 events plus
        # half a record, and recovery truncates back to the boundary.
        recovered = restore_session(_fresh(stream), tmp_path)
        assert recovered.journal.last_seq == 3
        _apply(recovered, stream, start=3)
        assert recovered.snapshot().to_dict() == uninterrupted_final

    def test_restore_refuses_a_used_session(self, tmp_path, stream):
        self._crash_at(stream, tmp_path, boundary=2)
        used = _fresh(stream)
        _apply(used, stream, stop=1)
        with pytest.raises(PersistenceError, match="freshly constructed"):
            restore_session(used, tmp_path)

    def test_resume_classmethod_rebuilds_from_stored_spec(
        self, tmp_path, stream, uninterrupted_final
    ):
        spec, fleet, _, _ = stream
        session = _fresh(stream)
        session.attach_journal(
            SessionJournal.create(tmp_path, spec=spec.to_dict(), snapshot_every=2)
        )
        _apply(session, stream, stop=5)
        session.journal.close()
        recovered = FlexibilitySession.resume(tmp_path, fleet=fleet)
        _apply(recovered, stream, start=5)
        assert recovered.snapshot().to_dict() == uninterrupted_final

    def test_resume_without_stored_spec_raises(self, tmp_path, stream):
        self._crash_at(stream, tmp_path, boundary=2)
        with pytest.raises(PersistenceError, match="stores no run spec"):
            FlexibilitySession.resume(tmp_path)


# ---------------------------------------------------------------------- #
# replay_session: journal/resume surface + the failed-event report
# ---------------------------------------------------------------------- #


class TestReplaySurface:
    def test_journal_then_resume_full_stream_is_identity(self, tmp_path):
        baseline = replay_session(EVENTS_FILE)
        journaled = replay_session(EVENTS_FILE, journal_dir=tmp_path / "j")
        assert journaled == baseline
        resumed = replay_session(EVENTS_FILE, journal_dir=tmp_path / "j", resume=True)
        # Everything was already applied: the resumed report carries the
        # recovered final state and no new deltas.
        assert resumed["final"] == baseline["final"]
        assert resumed["committed"] == baseline["committed"]
        assert resumed["deltas"] == []

    def test_resume_rejects_foreign_spec(self, tmp_path, stream):
        spec, _, _, _ = stream
        altered = spec.to_dict()
        altered["scenario"]["seed"] = spec.scenario.seed + 1
        SessionJournal.create(tmp_path, spec=altered).close()
        with pytest.raises(SessionError, match="different .* spec"):
            replay_session(EVENTS_FILE, journal_dir=tmp_path, resume=True)

    def test_failed_event_report_survives_the_error(self):
        with faults.inject_faults(
            faults.FaultSpec("session-event", mode="error", index=4)
        ):
            with pytest.raises(SessionReplayError, match=r"events\[4\]") as excinfo:
                replay_session(EVENTS_FILE)
        report = excinfo.value.report
        assert report is not None
        assert report["failed_event"]["position"] == 4
        assert report["failed_event"]["type"] == "ingest"
        assert "injected fault" in report["failed_event"]["error"]
        # Progress up to the failure is preserved: the first replan's row.
        assert len(report["replans"]) == 1
        assert report["final"] is not None

    def test_cli_writes_partial_report_and_exits_nonzero(self, tmp_path):
        out = tmp_path / "report.json"
        env = dict(os.environ)
        env[faults.FAULTS_ENV_VAR] = faults.FaultPlan(
            specs=(faults.FaultSpec("session-event", mode="error", index=4),),
            latch_dir=None,
        ).encode()
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "session",
                "--replay",
                str(EVENTS_FILE),
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 1
        assert "wrote partial report" in proc.stderr
        report = json.loads(out.read_text())
        assert report["failed_event"]["position"] == 4

    def test_cli_resume_without_journal_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["session", "--replay", str(EVENTS_FILE), "--resume"]) == 2
        assert "--resume needs --journal" in capsys.readouterr().err


@pytest.mark.tier2
class TestCrashRecoveryDrill:
    """The CI smoke, as a test: SIGKILL ``repro session`` mid-stream via
    the fault harness, then ``--resume`` finishes to the exact report."""

    def _run(self, argv, tmp_path, fault_index=None):
        env = dict(os.environ)
        env.pop(faults.FAULTS_ENV_VAR, None)
        if fault_index is not None:
            env[faults.FAULTS_ENV_VAR] = faults.FaultPlan(
                specs=(
                    faults.FaultSpec("session-event", mode="kill", index=fault_index),
                ),
                latch_dir=None,
            ).encode()
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "session", "--replay",
             str(EVENTS_FILE), *argv],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_sigkill_then_resume_reproduces_the_report(self, tmp_path):
        baseline_out = tmp_path / "baseline.json"
        assert self._run(["--out", str(baseline_out)], tmp_path).returncode == 0
        journal = tmp_path / "journal"
        killed = self._run(["--journal", str(journal)], tmp_path, fault_index=4)
        assert killed.returncode == -signal.SIGKILL
        assert (journal / WAL_NAME).exists()
        resumed_out = tmp_path / "resumed.json"
        resumed = self._run(
            ["--journal", str(journal), "--resume", "--out", str(resumed_out)],
            tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        baseline = json.loads(baseline_out.read_text())
        recovered = json.loads(resumed_out.read_text())
        assert recovered["final"] == baseline["final"]
        assert recovered["committed"] == baseline["committed"]
        assert recovered["committed_stable"]

"""Unit tests for :mod:`repro.timeseries.decompose`."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.errors import DataError
from repro.timeseries.axis import axis_for_days
from repro.timeseries.decompose import decompose_additive, seasonal_profile
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


def synthetic(days: int = 6, trend_slope: float = 0.001, noise: float = 0.0):
    axis = axis_for_days(START, days)
    t = np.arange(axis.length)
    seasonal = np.sin(2 * np.pi * t / 96)
    trend = trend_slope * t
    rng = np.random.default_rng(0)
    values = 5.0 + trend + seasonal + rng.normal(0, noise, axis.length)
    return TimeSeries(axis, values), trend, seasonal


class TestDecompose:
    def test_reconstruction_is_exact(self):
        series, _, _ = synthetic(noise=0.1)
        dec = decompose_additive(series)
        assert dec.reconstruction_error() < 1e-9

    def test_recovers_seasonal_shape(self):
        series, _, seasonal = synthetic()
        dec = decompose_additive(series)
        # Compare one period (away from edges) against the known seasonal.
        got = dec.seasonal.values[96:192]
        want = seasonal[96:192]
        assert np.corrcoef(got, want)[0, 1] > 0.99

    def test_seasonal_component_is_periodic(self):
        series, _, _ = synthetic()
        dec = decompose_additive(series)
        assert np.allclose(dec.seasonal.values[:96], dec.seasonal.values[96:192])

    def test_seasonal_sums_to_zero(self):
        series, _, _ = synthetic(noise=0.05)
        dec = decompose_additive(series)
        assert abs(dec.seasonal.values[:96].sum()) < 1e-8

    def test_recovers_trend_level(self):
        series, trend, _ = synthetic(trend_slope=0.002)
        dec = decompose_additive(series)
        middle = slice(96, -96)
        expected = 5.0 + trend[middle]
        assert np.abs(dec.trend.values[middle] - expected).mean() < 0.05

    def test_custom_period(self):
        series, _, _ = synthetic()
        dec = decompose_additive(series, period=48)
        assert dec.reconstruction_error() < 1e-9

    def test_too_short_raises(self):
        axis = axis_for_days(START, 1)
        series = TimeSeries.zeros(axis)
        with pytest.raises(DataError):
            decompose_additive(series)  # needs two periods

    def test_tiny_period_raises(self):
        series, _, _ = synthetic()
        with pytest.raises(DataError):
            decompose_additive(series, period=1)

    def test_seasonal_profile_helper(self):
        series, _, _ = synthetic()
        profile = seasonal_profile(series)
        assert profile.shape == (96,)
        assert profile.max() > 0.8  # sinusoid amplitude preserved

"""Unit tests for the random flex-offer generator (the MIRABEL baseline)."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.flexoffer.generators import (
    RandomGeneratorConfig,
    random_flexoffer,
    random_flexoffers,
)
from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis, axis_for_days

START = datetime(2012, 3, 5)


class TestConfigValidation:
    def test_defaults_valid(self):
        RandomGeneratorConfig()

    def test_bad_slices(self):
        with pytest.raises(ValueError):
            RandomGeneratorConfig(slices_min=0)
        with pytest.raises(ValueError):
            RandomGeneratorConfig(slices_min=5, slices_max=2)

    def test_bad_energy(self):
        with pytest.raises(ValueError):
            RandomGeneratorConfig(total_energy_min=0.0)
        with pytest.raises(ValueError):
            RandomGeneratorConfig(total_energy_min=2.0, total_energy_max=1.0)

    def test_bad_band(self):
        with pytest.raises(ValueError):
            RandomGeneratorConfig(energy_band_fraction=1.5)

    def test_bad_flexibility(self):
        with pytest.raises(ValueError):
            RandomGeneratorConfig(
                time_flexibility_min=timedelta(hours=5),
                time_flexibility_max=timedelta(hours=1),
            )


class TestRandomOffer:
    def test_offer_fits_horizon(self):
        axis = axis_for_days(START, 1)
        rng = np.random.default_rng(0)
        for _ in range(50):
            fo = random_flexoffer(axis, rng)
            assert fo.earliest_start >= axis.start
            latest_end_index = (
                axis.index_of(fo.latest_start) + fo.profile_intervals
            )
            assert latest_end_index <= axis.length

    def test_energy_within_config(self):
        axis = axis_for_days(START, 1)
        rng = np.random.default_rng(1)
        config = RandomGeneratorConfig(total_energy_min=1.0, total_energy_max=2.0)
        for _ in range(30):
            fo = random_flexoffer(axis, rng, config)
            tmin, tmax = fo.effective_total_bounds()
            expected = 0.5 * (tmin + tmax)
            assert 0.9 <= expected <= 2.2  # band fraction widens the range

    def test_small_axis_never_fails(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 4)
        rng = np.random.default_rng(2)
        for _ in range(20):
            fo = random_flexoffer(axis, rng)
            assert fo.profile_intervals <= 4

    def test_deterministic_given_seed(self):
        axis = axis_for_days(START, 1)
        a = random_flexoffer(axis, np.random.default_rng(7))
        b = random_flexoffer(axis, np.random.default_rng(7))
        assert a.earliest_start == b.earliest_start
        assert a.slices == b.slices


class TestRandomBatch:
    def test_count_scales_with_days(self):
        rng = np.random.default_rng(3)
        config = RandomGeneratorConfig(offers_per_day=4)
        one_day = random_flexoffers(axis_for_days(START, 1), rng, config)
        three_days = random_flexoffers(axis_for_days(START, 3), rng, config)
        assert len(one_day) == 4
        assert len(three_days) == 12

    def test_uniform_dispersion_over_day(self):
        """The paper's criticism: random offers spread uniformly in the day."""
        axis = axis_for_days(START, 1)
        rng = np.random.default_rng(4)
        config = RandomGeneratorConfig(offers_per_day=300)
        offers = random_flexoffers(axis, rng, config)
        hours = np.array([o.earliest_start.hour for o in offers])
        morning = np.mean((hours >= 0) & (hours < 12))
        # Close to half the starts in each half of the day (loose bound:
        # late starts are clipped by profile fitting).
        assert 0.35 <= morning <= 0.65

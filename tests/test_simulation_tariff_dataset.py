"""Unit tests for the tariff-response model and fleet generation."""

from __future__ import annotations

from datetime import datetime, time, timedelta

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.simulation.activations import Activation
from repro.simulation.dataset import generate_fleet, random_household_config
from repro.simulation.household import HouseholdConfig
from repro.simulation.tariff import (
    TariffScheme,
    flat_tariff,
    night_tariff,
    shift_into_low_window,
    simulate_tariff_pair,
)
from repro.timeseries.calendar import DailyWindow

START = datetime(2012, 3, 5)


class TestTariffScheme:
    def test_flat(self):
        scheme = flat_tariff()
        assert scheme.is_flat
        assert not scheme.is_low(START.replace(hour=23))
        assert scheme.price_at(START) == scheme.high_price

    def test_night_tariff_windows(self):
        scheme = night_tariff()
        assert scheme.is_low(START.replace(hour=23))
        assert scheme.is_low(START.replace(hour=3))
        assert not scheme.is_low(START.replace(hour=12))
        assert scheme.price_at(START.replace(hour=23)) == scheme.low_price

    def test_price_order_enforced(self):
        with pytest.raises(ValidationError):
            TariffScheme(name="bad", high_price=0.1, low_price=0.2)


class TestShifting:
    def test_shift_lands_in_low_window(self):
        scheme = night_tariff()
        act = Activation("washing-machine-y", START.replace(hour=18), 2.0,
                         timedelta(minutes=100), True)
        rng = np.random.default_rng(0)
        for _ in range(20):
            moved = shift_into_low_window(act, scheme, rng)
            assert scheme.is_low(moved.start)
            assert moved.start >= act.start
            assert moved.energy_kwh == act.energy_kwh

    def test_flat_scheme_no_shift(self):
        act = Activation("x", START, 1.0, timedelta(hours=1), True)
        assert shift_into_low_window(act, flat_tariff(), np.random.default_rng(0)) is act


class TestTariffPair:
    def test_pair_consistency(self, tariff_pair):
        study = tariff_pair
        # Same base load in both traces.
        assert study.single.base_load == study.multi.base_load
        # Total energy only differs by shifts falling off the horizon.
        assert study.multi.total.total() <= study.single.total.total() + 1e-6

    def test_all_shifts_moved_to_low(self, tariff_pair):
        scheme = tariff_pair.scheme
        for record in tariff_pair.shifts:
            assert not scheme.is_low(record.original.start)
            assert scheme.is_low(record.shifted.start)
            assert record.delay >= timedelta(0)

    def test_night_consumption_increases(self, tariff_pair):
        """Behavioural response moves energy into the 22:00-06:00 window."""
        night = DailyWindow(time(22, 0), time(6, 0))

        def night_energy(trace):
            return sum(e for t, e in trace.metered() if night.contains(t))

        assert night_energy(tariff_pair.multi) > night_energy(tariff_pair.single)

    def test_cost_drops_under_night_tariff(self, tariff_pair):
        study = tariff_pair
        assert study.cost(study.multi) < study.cost(study.single)

    def test_response_rate_zero_changes_nothing(self):
        config = HouseholdConfig(household_id="h")
        study = simulate_tariff_pair(
            config, START, 7, np.random.default_rng(3), response_rate=0.0
        )
        assert study.shifts == []
        assert study.single.total == study.multi.total

    def test_invalid_response_rate(self):
        with pytest.raises(ValidationError):
            simulate_tariff_pair(
                HouseholdConfig(household_id="h"), START, 2,
                np.random.default_rng(0), response_rate=1.5,
            )


class TestFleet:
    def test_fleet_shape(self, fleet):
        assert len(fleet) == 6
        agg = fleet.aggregate_metered()
        assert len(agg) == 7 * 96
        assert agg.total() > 0

    def test_household_heterogeneity(self, fleet):
        occupants = {t.config.occupants for t in fleet}
        appliance_sets = {tuple(t.config.appliances) for t in fleet}
        assert len(appliance_sets) > 1 or len(occupants) > 1

    def test_every_household_has_wet_appliance(self):
        rng = np.random.default_rng(0)
        for i in range(30):
            config = random_household_config(f"h{i}", rng)
            assert (
                "washing-machine-y" in config.appliances
                or "dishwasher-z" in config.appliances
            )

    def test_aggregate_true_flexible_bounded(self, fleet):
        flexible = fleet.aggregate_true_flexible()
        total = fleet.aggregate_metered()
        assert (flexible.values <= total.values + 1e-9).all()
        assert 0.0 < fleet.flexible_share < 1.0

    def test_deterministic(self):
        a = generate_fleet(3, START, 1, seed=42)
        b = generate_fleet(3, START, 1, seed=42)
        assert a.aggregate_metered() == b.aggregate_metered()

    def test_seed_changes_fleet(self):
        a = generate_fleet(3, START, 1, seed=1)
        b = generate_fleet(3, START, 1, seed=2)
        assert a.aggregate_metered() != b.aggregate_metered()

    def test_validation(self):
        with pytest.raises(ValidationError):
            generate_fleet(0, START, 1)

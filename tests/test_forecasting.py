"""Tests for the forecasting substrate (paper [6])."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.errors import DataError
from repro.forecasting.evaluate import mae, mape, rmse, rolling_backtest
from repro.forecasting.models import (
    FORECASTERS,
    autoregressive,
    drift,
    holt_winters,
    persistence,
    seasonal_naive,
)
from repro.timeseries.axis import axis_for_days
from repro.timeseries.series import TimeSeries

START = datetime(2012, 3, 5)


def seasonal_series(days: int = 6, noise: float = 0.0) -> TimeSeries:
    axis = axis_for_days(START, days)
    t = np.arange(axis.length)
    values = 2.0 + np.sin(2 * np.pi * t / 96)
    if noise:
        values += np.random.default_rng(0).normal(0, noise, axis.length)
    return TimeSeries(axis, values)


class TestModels:
    def test_persistence_repeats_last(self):
        series = seasonal_series()
        forecast = persistence(series, 10)
        assert np.allclose(forecast.values, series.values[-1])
        assert forecast.axis.start == series.axis.end

    def test_seasonal_naive_repeats_period(self):
        series = seasonal_series()
        forecast = seasonal_naive(series, 96)
        assert np.allclose(forecast.values, series.values[-96:])

    def test_seasonal_naive_partial_horizon(self):
        series = seasonal_series()
        forecast = seasonal_naive(series, 10)
        assert len(forecast) == 10
        assert np.allclose(forecast.values, series.values[-96:][:10])

    def test_seasonal_naive_perfect_on_periodic(self):
        series = seasonal_series()
        forecast = seasonal_naive(series, 96)
        actual = seasonal_series(7).slice(96 * 6, 96)
        assert rmse(forecast, actual) < 1e-9

    def test_drift_extrapolates_line(self):
        axis = axis_for_days(START, 1)
        series = TimeSeries(axis, np.linspace(0, 95, 96))
        forecast = drift(series, 5)
        assert np.allclose(forecast.values, [96, 97, 98, 99, 100])

    def test_holt_winters_tracks_seasonality(self):
        series = seasonal_series(days=6, noise=0.02)
        forecast = holt_winters(series, 96)
        actual_shape = 2.0 + np.sin(2 * np.pi * np.arange(96) / 96)
        assert np.corrcoef(forecast.values, actual_shape)[0, 1] > 0.95

    def test_holt_winters_needs_two_periods(self):
        series = seasonal_series(days=1)
        with pytest.raises(DataError):
            holt_winters(series, 10)

    def test_holt_winters_parameter_validation(self):
        series = seasonal_series()
        with pytest.raises(DataError):
            holt_winters(series, 10, alpha=1.5)

    def test_ar_learns_ar_process(self):
        rng = np.random.default_rng(1)
        n = 600
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = 0.9 * x[t - 1] + rng.normal(0, 0.1)
        axis = axis_for_days(START, 7).sub_axis(0, n)
        series = TimeSeries(axis, x)
        forecast = autoregressive(series, 1, order=4)
        assert forecast.values[0] == pytest.approx(0.9 * x[-1], abs=0.15)

    def test_ar_validation(self):
        series = seasonal_series()
        with pytest.raises(DataError):
            autoregressive(series, 5, order=0)
        short = series.slice(0, 4)
        with pytest.raises(DataError):
            autoregressive(short, 5, order=8)

    def test_horizon_validation(self):
        series = seasonal_series()
        with pytest.raises(DataError):
            persistence(series, 0)

    def test_registry_complete(self):
        assert set(FORECASTERS) == {
            "persistence", "seasonal-naive", "drift", "holt-winters", "ar",
        }


class TestMetrics:
    def test_metric_values(self):
        axis = axis_for_days(START, 1).sub_axis(0, 4)
        forecast = TimeSeries(axis, [1.0, 2.0, 3.0, 4.0])
        actual = TimeSeries(axis, [2.0, 2.0, 2.0, 2.0])
        assert mae(forecast, actual) == pytest.approx(1.0)
        assert rmse(forecast, actual) == pytest.approx(np.sqrt(6 / 4))
        assert mape(forecast, actual) == pytest.approx(0.5)

    def test_mape_skips_zeros(self):
        axis = axis_for_days(START, 1).sub_axis(0, 3)
        forecast = TimeSeries(axis, [1.0, 1.0, 1.0])
        actual = TimeSeries(axis, [0.0, 2.0, 2.0])
        assert mape(forecast, actual) == pytest.approx(0.5)

    def test_mape_all_zero_raises(self):
        axis = axis_for_days(START, 1).sub_axis(0, 3)
        forecast = TimeSeries(axis, [1.0, 1.0, 1.0])
        actual = TimeSeries.zeros(axis)
        with pytest.raises(DataError):
            mape(forecast, actual)


class TestBacktest:
    def test_backtest_folds(self):
        series = seasonal_series(days=6)
        report = rolling_backtest(
            seasonal_naive, series, train_intervals=96 * 2, horizon=96, name="sn"
        )
        assert report.folds == 4
        assert report.model == "sn"
        assert report.rmse < 1e-9  # periodic series: perfect

    def test_seasonal_beats_persistence_on_seasonal_data(self):
        series = seasonal_series(days=6, noise=0.05)
        sn = rolling_backtest(seasonal_naive, series, 96 * 2, 96)
        p = rolling_backtest(persistence, series, 96 * 2, 96)
        assert sn.rmse < p.rmse

    def test_too_short_raises(self):
        series = seasonal_series(days=1)
        with pytest.raises(DataError):
            rolling_backtest(persistence, series, 96, 96)

"""Unit tests for household simulation (activations, base load, traces)."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.appliances.database import default_database
from repro.errors import DataError, ValidationError
from repro.simulation.activations import (
    Activation,
    draw_daily_activations,
    flexible_energy_series,
    materialise,
    total_energy,
)
from repro.simulation.household import (
    HouseholdConfig,
    base_load_series,
    simulate_household,
)
from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis

START = datetime(2012, 3, 5)


class TestActivationDrawing:
    def test_draw_respects_frequency_scale_zero(self, rng):
        spec = default_database().get("washing-machine-y")
        acts = draw_daily_activations(spec, START, rng, frequency_scale=0.0)
        assert acts == []

    def test_draw_mean_count(self):
        spec = default_database().get("television")  # daily
        rng = np.random.default_rng(0)
        counts = [
            len(draw_daily_activations(spec, START, rng)) for _ in range(1000)
        ]
        assert np.mean(counts) == pytest.approx(1.0, abs=0.1)

    def test_activation_attributes(self, rng):
        spec = default_database().get("washing-machine-y")
        acts = draw_daily_activations(spec, START, rng, household_id="h1",
                                      frequency_scale=20.0)
        assert acts
        for act in acts:
            assert act.appliance == "washing-machine-y"
            assert act.flexible
            assert spec.energy_min_kwh <= act.energy_kwh <= spec.energy_max_kwh
            assert act.duration == spec.cycle_duration
            assert act.household_id == "h1"
            assert START <= act.start < START + timedelta(days=1)

    def test_shifted(self):
        act = Activation("x", START, 1.0, timedelta(hours=1), True)
        moved = act.shifted(timedelta(hours=2))
        assert moved.start == START + timedelta(hours=2)
        assert moved.end == START + timedelta(hours=3)


class TestMaterialise:
    def test_energy_conservation(self, rng):
        db = default_database()
        spec = db.get("dishwasher-z")
        axis = TimeAxis(START, ONE_MINUTE, 2 * 24 * 60)
        acts = [
            Activation(spec.name, START + timedelta(hours=5), 1.5, spec.cycle_duration, True),
            Activation(spec.name, START + timedelta(hours=30), 1.8, spec.cycle_duration, True),
        ]
        series = materialise(acts, {spec.name: spec}, axis)
        assert series.total() == pytest.approx(3.3)

    def test_truncation_at_axis_end(self):
        db = default_database()
        spec = db.get("dishwasher-z")  # 85-minute cycle
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        late = Activation(
            spec.name, START + timedelta(hours=23, minutes=30), 1.5, spec.cycle_duration, True
        )
        series = materialise([late], {spec.name: spec}, axis)
        assert 0 < series.total() < 1.5  # partially truncated

    def test_activation_before_axis_raises(self):
        db = default_database()
        spec = db.get("dishwasher-z")
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        early = Activation(spec.name, START - timedelta(hours=1), 1.5, spec.cycle_duration, True)
        with pytest.raises(DataError):
            materialise([early], {spec.name: spec}, axis)

    def test_unknown_appliance_raises(self):
        axis = TimeAxis(START, ONE_MINUTE, 60)
        act = Activation("mystery", START, 1.0, timedelta(minutes=10), True)
        with pytest.raises(DataError):
            materialise([act], {}, axis)

    def test_requires_minute_axis(self):
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        with pytest.raises(DataError):
            materialise([], {}, axis)

    def test_flexible_energy_series_filters(self):
        db = default_database()
        wm = db.get("washing-machine-y")   # flexible
        oven = db.get("oven")              # not flexible
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        acts = [
            Activation(wm.name, START + timedelta(hours=10), 2.0, wm.cycle_duration, wm.flexible),
            Activation(oven.name, START + timedelta(hours=18), 1.5, oven.cycle_duration, oven.flexible),
        ]
        specs = {wm.name: wm, oven.name: oven}
        flexible = flexible_energy_series(acts, specs, axis)
        assert flexible.total() == pytest.approx(2.0)
        assert total_energy(acts) == pytest.approx(3.5)


class TestBaseLoad:
    def test_base_load_positive_and_structured(self, rng):
        config = HouseholdConfig(household_id="h")
        axis = TimeAxis(START, ONE_MINUTE, 7 * 24 * 60)
        base = base_load_series(config, axis, rng)
        assert base.is_nonnegative()
        profile = base.daily_profile()
        evening = profile[20 * 60]   # 20:00
        night = profile[3 * 60]      # 03:00
        assert evening > 1.5 * night  # evening hump

    def test_base_load_requires_minute_axis(self, rng):
        config = HouseholdConfig(household_id="h")
        axis = TimeAxis(START, FIFTEEN_MINUTES, 96)
        with pytest.raises(ValidationError):
            base_load_series(config, axis, rng)

    def test_occupants_scale_load(self):
        axis = TimeAxis(START, ONE_MINUTE, 24 * 60)
        small = HouseholdConfig(household_id="s", occupants=1, noise_std_kw=0.0)
        large = HouseholdConfig(household_id="l", occupants=4, noise_std_kw=0.0)
        base_small = base_load_series(small, axis, np.random.default_rng(0))
        base_large = base_load_series(large, axis, np.random.default_rng(0))
        assert base_large.total() > base_small.total()


class TestHouseholdConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            HouseholdConfig(household_id="")
        with pytest.raises(ValidationError):
            HouseholdConfig(household_id="h", occupants=0)
        with pytest.raises(ValidationError):
            HouseholdConfig(household_id="h", standby_kw=-0.1)
        with pytest.raises(ValidationError):
            HouseholdConfig(household_id="h", noise_std_kw=-0.1)


class TestSimulateHousehold:
    def test_trace_consistency(self, rng):
        config = HouseholdConfig(household_id="h1")
        trace = simulate_household(config, START, 3, rng)
        # total == base + sum(per appliance)
        reconstructed = trace.base_load.values.copy()
        for series in trace.per_appliance.values():
            reconstructed += series.values
        assert np.allclose(reconstructed, trace.total.values)

    def test_metered_resolution_and_conservation(self, rng):
        config = HouseholdConfig(household_id="h1")
        trace = simulate_household(config, START, 2, rng)
        metered = trace.metered()
        assert metered.axis.resolution == FIFTEEN_MINUTES
        assert metered.total() == pytest.approx(trace.total.total())

    def test_activation_log_matches_appliance_energy(self, rng):
        config = HouseholdConfig(household_id="h1")
        trace = simulate_household(config, START, 3, rng)
        logged = sum(a.energy_kwh for a in trace.activations)
        materialised = sum(s.total() for s in trace.per_appliance.values())
        # Truncation at the horizon can only lose energy, never create it.
        assert materialised <= logged + 1e-9
        assert materialised > 0.5 * logged

    def test_flexible_share_consistent(self, rng):
        config = HouseholdConfig(household_id="h1")
        trace = simulate_household(config, START, 5, rng)
        share = trace.flexible_share
        assert 0.0 <= share < 1.0
        flexible = [a for a in trace.flexible_activations()]
        assert all(a.flexible for a in flexible)

    def test_true_flexible_bounded_by_total(self, rng):
        config = HouseholdConfig(household_id="h1")
        trace = simulate_household(config, START, 3, rng)
        flexible = trace.true_flexible()
        metered = trace.metered()
        assert (flexible.values <= metered.values + 1e-9).all()

    def test_days_validation(self, rng):
        with pytest.raises(ValidationError):
            simulate_household(HouseholdConfig(household_id="h"), START, 0, rng)

    def test_deterministic_given_seed(self):
        config = HouseholdConfig(household_id="h1")
        a = simulate_household(config, START, 2, np.random.default_rng(9))
        b = simulate_household(config, START, 2, np.random.default_rng(9))
        assert a.total == b.total
        assert len(a.activations) == len(b.activations)

"""Zone-sharded multi-market scheduling: model, driver, engine, wire format.

Covers the tentpole contract of the zones subsystem:

* :class:`ZonedTarget`/:class:`MarketZone` validation and the assignment
  policy (explicit household mapping, deterministic hash-shard fallback);
* :func:`schedule_zones` — zone partition, per-zone independence, and the
  ``workers=N`` process-pool fan-out reproducing the sequential report
  *exactly*;
* the ``engine="incremental"`` placement engine — bitwise identical to the
  vectorized engine (and placement-identical to the reference loop) on
  real fleet aggregates, including the gap-ridden and DST fall-back
  conformance scenarios;
* the zone wire format — spec and report round trips, a pinned golden for
  the zoned encoding, and backward-compatible loads of pre-zone goldens.
"""

from __future__ import annotations

import json
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    ExtractorSpec,
    FlexibilityService,
    PipelineSpec,
    RunReport,
    RunSpec,
    ScenarioSpec,
    ScheduleSpec,
    ZoneSpec,
)
from repro.api.registry import create_extractor
from repro.errors import SchedulingError, SpecError
from repro.flexoffer.io import (
    any_schedule_from_dict,
    any_schedule_to_dict,
    zoned_result_from_dict,
    zoned_result_to_dict,
)
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.flexoffer.schedule import ScheduledFlexOffer, schedules_to_series
from repro.pipeline.fleet import FleetPipeline, fleet_zoned_target
from repro.scheduling.greedy import ScheduleConfig, ScheduleResult, greedy_schedule
from repro.scheduling.zones import (
    MarketZone,
    ZonedScheduleResult,
    ZonedTarget,
    assign_zone,
    assign_zones,
    hash_shard,
    routing_key,
    schedule_zones,
)
from repro.simulation.res import simulate_wind_production
from repro.timeseries.axis import TimeAxis, axis_for_days
from repro.timeseries.series import TimeSeries
from repro.workloads import scenarios as w

GOLDEN = Path(__file__).parent / "data" / "golden"
START = datetime(2012, 3, 5)


def flat_zone(name: str, level: float = 0.5, length: int = 96) -> MarketZone:
    axis = TimeAxis(start=START, resolution=timedelta(minutes=15), length=length)
    return MarketZone(
        name=name,
        target=TimeSeries.full(axis, level, name=f"{name}-target"),
        price_floor=0.05,
        price_cap=0.15,
    )


@pytest.fixture(scope="module")
def fleet_aggregates():
    """Real fleet aggregates with household consumer metadata."""
    fleet = w.zoned_market_fleet()
    extractor = create_extractor("peak-based", flexible_share=0.05)
    result = FleetPipeline(extractor, chunk_size=3).run(fleet)
    return fleet, result.aggregates


class TestZonedTargetModel:
    def test_zone_validation(self):
        with pytest.raises(SchedulingError, match="non-empty"):
            flat_zone("")
        with pytest.raises(SchedulingError, match="price_cap"):
            MarketZone("z", flat_zone("z").target, price_floor=0.2, price_cap=0.1)
        with pytest.raises(SchedulingError, match=">= 0"):
            MarketZone("z", flat_zone("z").target, price_floor=-0.1)

    def test_zoned_target_validation(self):
        with pytest.raises(SchedulingError, match="at least one zone"):
            ZonedTarget(zones=())
        with pytest.raises(SchedulingError, match="duplicate zone names"):
            ZonedTarget(zones=(flat_zone("a"), flat_zone("a")))
        with pytest.raises(SchedulingError, match="unknown zone"):
            ZonedTarget(zones=(flat_zone("a"),), assignment={"hh-1": "mars"})

    def test_zone_names_stay_printable_past_26(self):
        from repro.scheduling.zones import zone_name

        assert zone_name(0) == "zone-a"
        assert zone_name(25) == "zone-z"
        assert zone_name(26) == "zone-27"
        assert zone_name(40) == "zone-41"

    def test_lookup_and_price_mid(self):
        zoned = ZonedTarget(zones=(flat_zone("a"), flat_zone("b")))
        assert zoned.names == ("a", "b")
        assert zoned.zone("b").name == "b"
        assert zoned.zone("a").price_mid == pytest.approx(0.1)
        with pytest.raises(SchedulingError, match="unknown zone"):
            zoned.zone("c")


class TestAssignmentPolicy:
    def test_explicit_mapping_wins_over_hash(self, fleet_aggregates):
        fleet, aggregates = fleet_aggregates
        household = routing_key(aggregates[0])
        zoned = ZonedTarget(
            zones=(flat_zone("a"), flat_zone("b")),
            assignment={household: "b"},
        )
        assert assign_zone(aggregates[0], zoned) == "b"

    def test_mapped_member_wins_over_leading_unmapped_member(self):
        # Grouping can merge offers of different households into one
        # aggregate; an explicitly assigned household must pull the whole
        # aggregate to its zone even when an unmapped household's offer
        # leads the group (an aggregate is one indivisible offer).
        from dataclasses import replace as dc_replace

        from repro.aggregation.aggregate import aggregate_group
        from repro.flexoffer.model import next_offer_id

        leader = FlexOffer(
            earliest_start=START,
            latest_start=START + timedelta(hours=2),
            slices=(ProfileSlice(0.2, 0.8),),
            consumer_id="hh-unmapped",
        )
        follower = dc_replace(
            leader, offer_id=next_offer_id(), consumer_id="hh-mapped"
        )
        aggregate = aggregate_group([leader, follower])
        zoned = ZonedTarget(
            zones=(flat_zone("a"), flat_zone("b")),
            assignment={"hh-mapped": "b"},
        )
        assert routing_key(aggregate) == "hh-unmapped"
        assert assign_zone(aggregate, zoned) == "b"

    def test_hash_shard_is_deterministic_and_total(self):
        names = ("a", "b", "c")
        for key in ("hh-0000", "hh-0001", "weird key", ""):
            assert hash_shard(key, names) == hash_shard(key, names)
            assert hash_shard(key, names) in names

    def test_routing_key_prefers_consumer_metadata(self, fleet_aggregates):
        fleet, aggregates = fleet_aggregates
        household_ids = {t.config.household_id for t in fleet.traces}
        assert all(routing_key(a) in household_ids for a in aggregates)

    def test_partition_preserves_order_and_covers_everything(
        self, fleet_aggregates
    ):
        _, aggregates = fleet_aggregates
        zoned = fleet_zoned_target(w.zoned_market_fleet(), zones=3)
        buckets = assign_zones(aggregates, zoned)
        assert set(buckets) == set(zoned.names)
        flattened = [a.offer.offer_id for bucket in buckets.values() for a in bucket]
        assert sorted(flattened) == sorted(a.offer.offer_id for a in aggregates)
        for bucket in buckets.values():
            positions = [aggregates.index(a) for a in bucket]
            assert positions == sorted(positions)


class TestScheduleZones:
    @pytest.fixture(scope="class")
    def zoned(self):
        return fleet_zoned_target(w.zoned_market_fleet(), zones=3)

    def test_every_offer_scheduled_in_exactly_one_zone(
        self, fleet_aggregates, zoned
    ):
        _, aggregates = fleet_aggregates
        result = schedule_zones(aggregates, zoned)
        routed = result.assignment()
        assert sorted(routed) == sorted(a.offer.offer_id for a in aggregates)
        for aggregate in aggregates:
            assert routed[aggregate.offer.offer_id] == assign_zone(
                aggregate, zoned
            )

    def test_workers_fanout_identical_to_sequential(
        self, fleet_aggregates, zoned
    ):
        _, aggregates = fleet_aggregates
        sequential = schedule_zones(aggregates, zoned)
        fanned = schedule_zones(aggregates, zoned, workers=2)
        assert fanned == sequential

    def test_summary_sums_zones(self, fleet_aggregates, zoned):
        _, aggregates = fleet_aggregates
        result = schedule_zones(aggregates, zoned)
        summary = result.summary()
        assert summary["schedule_zones"] == 3.0
        assert summary["schedule_placed"] == float(
            sum(len(r.schedules) for r in result.results)
        )
        assert result.cost == pytest.approx(
            sum(r.cost for r in result.results)
        )
        assert result.market_value == pytest.approx(
            sum(
                z.price_mid * r.scheduled_energy
                for z, r in zip(result.zones, result.results)
            )
        )
        assert len(result.zone_rows()) == 3

    def test_workers_validated(self, fleet_aggregates, zoned):
        _, aggregates = fleet_aggregates
        with pytest.raises(SchedulingError, match="workers"):
            schedule_zones(aggregates, zoned, workers=0)

    def test_empty_zone_is_legal(self, fleet_aggregates):
        _, aggregates = fleet_aggregates
        # Route everything explicitly to one zone; the other stays empty.
        assignment = {routing_key(a): "a" for a in aggregates}
        zoned = ZonedTarget(
            zones=(flat_zone("a"), flat_zone("b")), assignment=assignment
        )
        result = schedule_zones(aggregates, zoned)
        assert result.zone_result("b").schedules == []
        assert len(result.schedules) + len(result.unplaced) == len(aggregates)


class TestIncrementalEngine:
    """ROADMAP: placements only re-score overlapping candidates — and stay
    bitwise identical to the vectorized engine, scenario by scenario."""

    def _aggregates_on(self, fleet):
        extractor = create_extractor("peak-based", flexible_share=0.05)
        result = FleetPipeline(extractor, chunk_size=3).run(fleet)
        return [a.offer for a in result.aggregates]

    @pytest.mark.parametrize(
        "fleet_builder",
        [w.gap_ridden_fleet, w.dst_fallback_fleet],
        ids=["gap-ridden-metering", "dst-fallback-week"],
    )
    def test_bitwise_identical_on_conformance_scenarios(self, fleet_builder):
        fleet = fleet_builder()
        offers = self._aggregates_on(fleet)
        axis = fleet.metering_axis()
        target = simulate_wind_production(axis, np.random.default_rng(5))
        flexible = sum(o.profile_energy_max for o in offers)
        if target.total() > 0 and flexible > 0:
            target = target * (flexible / target.total())
        vectorized = greedy_schedule(offers, target)
        incremental = greedy_schedule(
            offers, target, config=ScheduleConfig(engine="incremental")
        )
        reference = greedy_schedule(
            offers, target, config=ScheduleConfig(engine="reference")
        )
        assert [
            (s.offer.offer_id, s.start, s.slice_energies)
            for s in incremental.schedules
        ] == [
            (s.offer.offer_id, s.start, s.slice_energies)
            for s in vectorized.schedules
        ]
        assert [o.offer_id for o in incremental.unplaced] == [
            o.offer_id for o in vectorized.unplaced
        ]
        assert incremental.cost == vectorized.cost
        assert [(s.offer.offer_id, s.start) for s in incremental.schedules] == [
            (s.offer.offer_id, s.start) for s in reference.schedules
        ]
        assert incremental.cost == pytest.approx(reference.cost, rel=1e-9)

    def test_identical_on_offers_off_the_axis_grid(self):
        # The same degenerate terrain the vectorized engine is tested on:
        # off-grid anchors, horizon spill-over, fully outside offers.
        axis = axis_for_days(START, 1)
        target = TimeSeries(
            axis, np.random.default_rng(4).uniform(0, 1, axis.length)
        )
        offers = [
            FlexOffer(
                earliest_start=START + timedelta(minutes=7),
                latest_start=START + timedelta(hours=26),
                slices=(ProfileSlice(0.2, 0.8, 3), ProfileSlice(0.1, 0.5, 2)),
            ),
            FlexOffer(
                earliest_start=START - timedelta(hours=2),
                latest_start=START + timedelta(hours=1),
                slices=(ProfileSlice(0.5, 1.0),),
            ),
            FlexOffer(
                earliest_start=START + timedelta(days=2),
                latest_start=START + timedelta(days=3),
                slices=(ProfileSlice(0.5, 1.0),),
            ),
        ]
        vectorized = greedy_schedule(offers, target)
        incremental = greedy_schedule(
            offers, target, config=ScheduleConfig(engine="incremental")
        )
        assert [(s.start, s.slice_energies) for s in vectorized.schedules] == [
            (s.start, s.slice_energies) for s in incremental.schedules
        ]
        assert [o.offer_id for o in vectorized.unplaced] == [
            o.offer_id for o in incremental.unplaced
        ]

    def test_identical_on_every_order(self, fleet_aggregates):
        _, aggregates = fleet_aggregates
        offers = [a.offer for a in aggregates]
        target = simulate_wind_production(
            axis_for_days(START, 5), np.random.default_rng(7)
        )
        for order in ("least-flexible-first", "largest-first", "as-given"):
            vectorized = greedy_schedule(offers, target, order=order)
            incremental = greedy_schedule(
                offers,
                target,
                order=order,
                config=ScheduleConfig(engine="incremental"),
            )
            assert [s.start for s in vectorized.schedules] == [
                s.start for s in incremental.schedules
            ]


def golden_zoned_result() -> ZonedScheduleResult:
    """A handcrafted zoned result with fully deterministic values."""
    axis = TimeAxis(start=START, resolution=timedelta(minutes=15), length=8)
    offer = FlexOffer(
        earliest_start=START,
        latest_start=START + timedelta(minutes=30),
        slices=(ProfileSlice(0.2, 0.8), ProfileSlice(0.1, 0.4)),
        offer_id="golden-zone-offer",
    )
    schedule = ScheduledFlexOffer(offer, START, (0.5, 0.25))
    stranded = FlexOffer(
        earliest_start=START + timedelta(days=2),
        latest_start=START + timedelta(days=3),
        slices=(ProfileSlice(0.5, 1.0),),
        offer_id="golden-stranded-offer",
    )
    north = ScheduleResult(
        schedules=[schedule],
        demand=schedules_to_series([schedule], axis),
        target=TimeSeries.full(axis, 0.5, name="north-target"),
        unplaced=[],
    )
    south = ScheduleResult(
        schedules=[],
        demand=schedules_to_series([], axis),
        target=TimeSeries.full(axis, 0.25, name="south-target"),
        unplaced=[stranded],
    )
    return ZonedScheduleResult(
        zones=(
            MarketZone("north", north.target, price_floor=0.05, price_cap=0.15),
            MarketZone("south", south.target, price_floor=0.1, price_cap=0.3),
        ),
        results=(north, south),
    )


class TestZoneWireFormat:
    def test_zoned_encoding_matches_golden(self):
        encoded = zoned_result_to_dict(golden_zoned_result())
        golden = json.loads((GOLDEN / "zoned_result_golden.json").read_text())
        assert encoded == golden

    def test_zoned_round_trip_is_lossless(self):
        result = golden_zoned_result()
        reloaded = zoned_result_from_dict(zoned_result_to_dict(result))
        assert reloaded == result
        # Serialise→parse→serialise is a fixed point through JSON proper.
        text = json.dumps(zoned_result_to_dict(result))
        assert json.dumps(zoned_result_to_dict(zoned_result_from_dict(json.loads(text)))) == text

    def test_dispatcher_discriminates_by_zones_key(self):
        zoned = golden_zoned_result()
        assert isinstance(
            any_schedule_from_dict(any_schedule_to_dict(zoned)),
            ZonedScheduleResult,
        )
        single = zoned.results[0]
        assert isinstance(
            any_schedule_from_dict(any_schedule_to_dict(single)), ScheduleResult
        )

    def test_old_single_market_report_golden_still_loads(self):
        # Pre-zone reports carry no "zones" key anywhere; they must keep
        # loading byte-for-byte through the extended wire format.
        golden = json.loads(
            (Path(__file__).parent / "data" / "run_report_golden.json").read_text()
        )
        report = RunReport.from_dict(golden)
        assert report.to_dict() == golden


ZONED_SPEC = RunSpec(
    kind="fleet",
    name="zoned-spec-test",
    scenario=ScenarioSpec(households=4, days=2, seed=11),
    extractors=(ExtractorSpec("peak-based", {"flexible_share": 0.05}),),
    pipeline=PipelineSpec(
        chunk_size=4,
        schedule=ScheduleSpec(
            engine="incremental",
            zones=(
                ZoneSpec(
                    name="north",
                    target_seed=2,
                    target_kwh=20.0,
                    price_floor=0.03,
                    price_cap=0.12,
                    households=("hh-0000", "hh-0001"),
                ),
                ZoneSpec(name="south", target_seed=3, target_kwh=15.0),
            ),
        ),
    ),
)


class TestZoneSpec:
    def test_round_trip(self):
        assert RunSpec.from_json(ZONED_SPEC.to_json()) == ZONED_SPEC

    def test_wire_format_omits_absent_zones(self):
        # Pre-zone spec files and goldens must keep loading unchanged.
        assert "zones" not in ScheduleSpec().to_dict()
        assert ScheduleSpec.from_dict(ScheduleSpec().to_dict()).zones == ()
        encoded = ZONED_SPEC.to_dict()
        assert len(encoded["pipeline"]["schedule"]["zones"]) == 2

    def test_validation(self):
        with pytest.raises(SpecError, match="zone.name"):
            ZoneSpec(name="")
        with pytest.raises(SpecError, match="target_kwh"):
            ZoneSpec(name="z", target_kwh=0.0)
        with pytest.raises(SpecError, match="price_cap below"):
            ZoneSpec(name="z", price_floor=0.5, price_cap=0.1)
        with pytest.raises(SpecError, match="duplicate zone names"):
            ScheduleSpec(zones=(ZoneSpec(name="a"), ZoneSpec(name="a")))
        with pytest.raises(SpecError, match="more than one zone"):
            ScheduleSpec(
                zones=(
                    ZoneSpec(name="a", households=("hh-0",)),
                    ZoneSpec(name="b", households=("hh-0",)),
                )
            )
        with pytest.raises(SpecError, match="duplicate household"):
            ZoneSpec(name="a", households=("hh-0", "hh-0"))
        with pytest.raises(SpecError, match="unknown key"):
            ZoneSpec.from_dict({"name": "a", "colour": "blue"})
        with pytest.raises(SpecError, match="missing required key 'name'"):
            ZoneSpec.from_dict({"target_seed": 1})


class TestZonedServiceRun:
    @pytest.fixture(scope="class")
    def report(self):
        return FlexibilityService().run(ZONED_SPEC)

    def test_schedule_is_zoned_and_honours_spec_assignment(self, report):
        result = report.get("peak-based")
        assert isinstance(result.schedule, ZonedScheduleResult)
        assert result.schedule.names == ("north", "south")
        assert result.summary["schedule_zones"] == 2.0
        # Every aggregate sits exactly where the spec's assignment policy
        # (explicit households → north, hash shard otherwise) routes it.
        routed = result.schedule.assignment()
        policy = ZonedTarget(
            zones=(flat_zone("north"), flat_zone("south")),
            assignment={"hh-0000": "north", "hh-0001": "north"},
        )
        for aggregate in result.aggregates:
            assert routed[aggregate.offer.offer_id] == assign_zone(
                aggregate, policy
            )

    def test_zoned_report_round_trips(self, report):
        text = report.to_json()
        reloaded = RunReport.from_json(text)
        assert reloaded.to_json() == text
        assert reloaded.to_dict() == report.to_dict()
        schedule = reloaded.get("peak-based").schedule
        assert isinstance(schedule, ZonedScheduleResult)
        assert schedule == report.get("peak-based").schedule

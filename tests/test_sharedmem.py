"""SharedFleetBuffer lifecycle and the shared-memory worker fan-out.

The scale-out contract (docs/ARCHITECTURE.md): exactly one owner per
segment, attachers are read-only and never unlink, close/unlink are
idempotent, and no ``/dev/shm`` segment survives a pipeline run — crash
paths included.  The fan-out itself must stay bitwise identical to both
the pickling fan-out and the sequential oracle.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.errors import SharedMemorySegmentError, ValidationError
from repro.pipeline.fleet import (
    FleetPipeline,
    _pack_jobs,
    results_identical,
    run_sequential,
)
from repro.pipeline.sharedmem import (
    SEGMENT_PREFIX,
    SharedArraySpec,
    SharedFleetBuffer,
    leaked_segments,
)
from repro.timeseries.axis import ONE_MINUTE, TimeAxis, axis_for_days
from repro.timeseries.series import TimeSeries
from repro.workloads.scenarios import SCENARIO_START


@pytest.fixture()
def matrix() -> np.ndarray:
    return np.arange(12.0).reshape(3, 4)


class TestLifecycle:
    def test_create_copies_and_round_trips_bitwise(self, matrix):
        with SharedFleetBuffer.create(matrix) as buffer:
            assert buffer.owner
            assert buffer.spec.shape == (3, 4)
            assert buffer.spec.name.startswith(SEGMENT_PREFIX)
            np.testing.assert_array_equal(buffer.array, matrix)
            # The segment holds a copy: mutating the source is invisible.
            matrix[0, 0] = 99.0
            assert buffer.array[0, 0] == 0.0

    def test_attach_sees_owner_writes_and_is_read_only(self, matrix):
        with SharedFleetBuffer.create(matrix) as owner:
            attached = SharedFleetBuffer.attach(owner.spec)
            try:
                assert not attached.owner
                np.testing.assert_array_equal(attached.array, owner.array)
                owner.array[1, 1] = -5.0
                assert attached.array[1, 1] == -5.0
                with pytest.raises(ValueError, match="read-only"):
                    attached.array[0, 0] = 1.0
            finally:
                attached.close()

    def test_double_close_and_double_unlink_are_safe(self, matrix):
        buffer = SharedFleetBuffer.create(matrix)
        buffer.close()
        buffer.close()
        assert buffer.closed
        buffer.unlink()
        buffer.unlink()
        assert leaked_segments() == []

    def test_array_after_close_raises(self, matrix):
        buffer = SharedFleetBuffer.create(matrix)
        buffer.close()
        with pytest.raises(ValidationError, match="is closed"):
            buffer.array
        buffer.unlink()

    def test_attached_side_must_not_unlink(self, matrix):
        with SharedFleetBuffer.create(matrix) as owner:
            attached = SharedFleetBuffer.attach(owner.spec)
            try:
                with pytest.raises(ValidationError, match="only the owner"):
                    attached.unlink()
            finally:
                attached.close()

    def test_unlink_after_segment_vanished_externally(self, matrix):
        # Crash-recovery sweeps may remove the file behind the owner's back
        # (``rm /dev/shm/repro-fleet-*``); owner teardown must still succeed.
        buffer = SharedFleetBuffer.create(matrix)
        Path("/dev/shm", buffer.spec.name).unlink()
        buffer.close()
        buffer.unlink()
        assert leaked_segments() == []

    def test_context_exit_unlinks_segment(self, matrix):
        with SharedFleetBuffer.create(matrix) as buffer:
            spec = buffer.spec
            assert spec.name in leaked_segments()
        assert spec.name not in leaked_segments()
        # A late attach must not leak the raw FileNotFoundError: it comes
        # back as the pinned ReproError subclass naming the segment and
        # the likely owner-unlinked-early cause.
        with pytest.raises(SharedMemorySegmentError, match=spec.name) as excinfo:
            SharedFleetBuffer.attach(spec)
        assert "unlinked it before this attach" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, FileNotFoundError)

    def test_attach_context_never_unlinks(self, matrix):
        with SharedFleetBuffer.create(matrix) as owner:
            with SharedFleetBuffer.attach(owner.spec) as attached:
                assert attached.array.shape == (3, 4)
            # The attacher closed; the segment must still be reachable.
            with SharedFleetBuffer.attach(owner.spec) as again:
                np.testing.assert_array_equal(again.array, owner.array)

    def test_rejects_empty_arrays_and_foreign_names(self):
        with pytest.raises(ValidationError, match="empty array"):
            SharedFleetBuffer.create(np.empty((0, 4)))
        with pytest.raises(ValidationError, match="must start with"):
            SharedFleetBuffer.create(np.ones(3), name="unmarked-segment")

    def test_attach_rejects_spec_larger_than_segment(self, matrix):
        with SharedFleetBuffer.create(matrix) as owner:
            lying = SharedArraySpec(
                name=owner.spec.name, shape=(3000, 4000), dtype=owner.spec.dtype
            )
            with pytest.raises(ValidationError, match="spec describes"):
                SharedFleetBuffer.attach(lying)

    def test_spec_describes_payload(self, matrix):
        with SharedFleetBuffer.create(matrix) as buffer:
            assert buffer.spec.nbytes == matrix.nbytes
            assert np.dtype(buffer.spec.dtype) == matrix.dtype


class TestCloseWithLiveViews:
    """Closing under live views must defer the unmap, never corrupt them.

    ``SharedMemory.close()`` unmaps the segment even while numpy views
    built on ``shm.buf`` still point into it (they hold no buffer export),
    so an eager close used to turn every outstanding view into a dangling
    pointer.  The buffer now tracks its views and defers the real close
    until the last one is garbage-collected.
    """

    def test_close_with_live_view_keeps_view_readable(self, matrix):
        buffer = SharedFleetBuffer.create(matrix)
        view = buffer.array
        buffer.close()  # must not raise BufferError, must not unmap
        assert buffer.closed
        np.testing.assert_array_equal(view, np.arange(12.0).reshape(3, 4))
        del view
        buffer.unlink()
        assert leaked_segments() == []

    def test_owner_exit_with_live_view(self, matrix):
        # Failure injection: a consumer keeps the array past the owner's
        # ``with`` block — the exact shape of a worker outliving a chunk.
        with SharedFleetBuffer.create(matrix) as buffer:
            view = buffer.array
        assert buffer.closed
        assert float(view[2, 3]) == 11.0
        del view
        assert leaked_segments() == []

    def test_multiple_views_all_must_die_before_unmap(self, matrix):
        buffer = SharedFleetBuffer.create(matrix)
        first = buffer.array
        second = buffer.array
        buffer.close()
        del first
        # One view is still alive: the segment must still be mapped.
        assert float(second[0, 1]) == 1.0
        del second
        buffer.unlink()
        assert leaked_segments() == []

    def test_attacher_close_with_live_view(self, matrix):
        with SharedFleetBuffer.create(matrix) as owner:
            attached = SharedFleetBuffer.attach(owner.spec)
            view = attached.array
            attached.close()
            np.testing.assert_array_equal(view, owner.array)
            del view

    def test_views_before_close_do_not_leak_segments(self, matrix):
        # The deferred-close path must still release the segment: after
        # the views die and unlink runs, /dev/shm holds nothing of ours.
        buffer = SharedFleetBuffer.create(matrix)
        views = [buffer.array for _ in range(5)]
        buffer.close()
        views.clear()
        buffer.unlink()
        assert leaked_segments() == []


class TestFanOutEquivalence:
    def test_shared_memory_fanout_bitwise_identical(self, fleet):
        sequential = run_sequential(fleet, seed=0)
        shared = FleetPipeline(workers=2, chunk_size=2, seed=0).run(fleet)
        pickled = FleetPipeline(
            workers=2, chunk_size=2, seed=0, shared_memory=False
        ).run(fleet)
        assert results_identical(shared, sequential)
        assert results_identical(pickled, sequential)
        assert leaked_segments() == []

    def test_pack_jobs_row_layout(self, fleet):
        pipeline = FleetPipeline()
        jobs = pipeline._prepare(list(fleet))
        matrix, axis, rows = _pack_jobs(jobs)
        assert matrix.shape == (len(jobs), axis.length)
        for row, (index, household_id, series) in zip(rows, jobs):
            assert row[0] == row[1] == index
            assert row[2] == household_id
            np.testing.assert_array_equal(matrix[row[0]], series.values)

    def test_pack_jobs_mixed_axes_fall_back(self):
        day = axis_for_days(SCENARIO_START, 1)
        minute = TimeAxis(SCENARIO_START, ONE_MINUTE, 24 * 60)
        jobs = [
            (0, "hh-0000", TimeSeries.full(day, 0.2)),
            (1, "hh-0001", TimeSeries.full(minute, 0.2)),
        ]
        assert _pack_jobs(jobs) is None

"""Shared fixtures: deterministic RNGs, canonical axes and cached scenarios.

Simulation-backed fixtures are session-scoped (the underlying scenario
builders are ``lru_cache``d as well), so the suite pays for each simulation
exactly once.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis, axis_for_days
from repro.timeseries.series import TimeSeries
from repro.workloads.paper_day import figure5_day
from repro.workloads.scenarios import (
    SCENARIO_START,
    nilm_household,
    small_fleet,
    tariff_study,
    weekend_skewed_household,
)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def day_axis() -> TimeAxis:
    """One day of 15-minute intervals starting at the scenario anchor."""
    return axis_for_days(SCENARIO_START, 1)


@pytest.fixture()
def week_axis() -> TimeAxis:
    """One week of 15-minute intervals."""
    return axis_for_days(SCENARIO_START, 7)


@pytest.fixture()
def minute_axis() -> TimeAxis:
    """One day of 1-minute intervals."""
    return TimeAxis(SCENARIO_START, ONE_MINUTE, 24 * 60)


@pytest.fixture()
def ramp_series(day_axis: TimeAxis) -> TimeSeries:
    """A simple increasing series over one day."""
    return TimeSeries(day_axis, np.linspace(0.1, 1.0, day_axis.length), "ramp")


@pytest.fixture()
def paper_day():
    """The reconstructed Figure 5 day."""
    return figure5_day(datetime(2012, 3, 7))


@pytest.fixture(scope="session")
def nilm_trace():
    """Cached 14-day five-appliance household (disaggregation target)."""
    return nilm_household(days=14, seed=3)


@pytest.fixture(scope="session")
def weekend_trace():
    """Cached 28-day household with weekend-skewed dishwasher."""
    return weekend_skewed_household(days=28, seed=11)


@pytest.fixture(scope="session")
def fleet():
    """Cached 6-household, 7-day fleet."""
    return small_fleet(n=6, days=7, seed=5)


@pytest.fixture(scope="session")
def tariff_pair():
    """Cached 28-day one-tariff/night-tariff study."""
    return tariff_study(days=28, seed=9)

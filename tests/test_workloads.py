"""Tests for the canonical workloads (paper day + scenarios)."""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE
from repro.workloads.paper_day import (
    FIGURE5_DAY_TOTAL,
    FIGURE5_PEAK_SIZES,
    figure5_day,
)
from repro.workloads.scenarios import (
    SCENARIO_START,
    metering_axis,
    nilm_household,
    small_fleet,
    tariff_study,
    weekend_skewed_household,
    wind_target,
)


class TestPaperDay:
    def test_construction_invariants(self):
        day = figure5_day()
        assert day.series.total() == pytest.approx(FIGURE5_DAY_TOTAL)
        assert len(day.series) == 96
        assert day.series.axis.resolution == FIFTEEN_MINUTES
        assert day.series.is_nonnegative()

    def test_peak_layout_matches_sizes(self):
        day = figure5_day()
        assert len(day.peak_first_indices) == len(FIGURE5_PEAK_SIZES)

    def test_custom_start_date(self):
        day = figure5_day(datetime(2013, 1, 10, 14, 30))
        # Anchored to midnight of the given date.
        assert day.series.axis.start == datetime(2013, 1, 10)

    def test_deterministic(self):
        assert figure5_day().series == figure5_day().series


class TestScenarios:
    def test_nilm_household_cached(self):
        a = nilm_household(days=3, seed=1)
        b = nilm_household(days=3, seed=1)
        assert a is b  # lru_cache

    def test_nilm_household_has_flexible_appliances(self):
        trace = nilm_household(days=3, seed=1)
        assert any(a.flexible for a in trace.activations)
        assert trace.axis.resolution == ONE_MINUTE

    def test_weekend_skewed_household(self):
        trace = weekend_skewed_household(days=14, seed=2)
        assert "dishwasher-z" in trace.config.appliances

    def test_small_fleet_sizes(self):
        fleet = small_fleet(n=3, days=2, seed=4)
        assert len(fleet) == 3
        assert fleet.days == 2

    def test_tariff_study_scenario(self):
        study = tariff_study(days=7, seed=6)
        assert study.scheme.name == "night"
        assert len(study.single.activations) > 0

    def test_wind_target_scaling(self):
        target = wind_target(days=2, seed=1, scale_kwh=100.0)
        assert target.total() == pytest.approx(100.0)
        assert target.is_nonnegative()

    def test_metering_axis(self):
        axis = metering_axis(days=3)
        assert axis.start == SCENARIO_START
        assert axis.length == 3 * 96

"""The extractor registry: names, parameter routing, error contracts.

The registry is the only place string-driven callers construct extractors,
so its error messages are part of the API surface — the unknown-name and
unknown-parameter messages are pinned exactly (golden strings) below.
"""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.api import (
    available_extractors,
    create_extractor,
    entry_for,
    get_entry,
    input_series_for,
    register_extractor,
    registry_rows,
)
from repro.errors import RegistryError
from repro.extraction import (
    BasicExtractor,
    FrequencyBasedExtractor,
    MultiTariffExtractor,
    PeakBasedExtractor,
    RandomBaselineExtractor,
    ScheduleBasedExtractor,
)
from repro.extraction.production import (
    DispatchableProductionExtractor,
    WindProductionExtractor,
)

ALL_NAMES = (
    "basic",
    "dispatchable-production",
    "frequency-based",
    "multi-tariff",
    "peak-based",
    "random-baseline",
    "schedule-based",
    "wind-production",
)


class TestRegistryContents:
    def test_every_approach_registered(self):
        assert available_extractors() == ALL_NAMES

    def test_entries_point_at_the_real_classes(self):
        assert get_entry("basic").cls is BasicExtractor
        assert get_entry("peak-based").cls is PeakBasedExtractor
        assert get_entry("multi-tariff").cls is MultiTariffExtractor
        assert get_entry("frequency-based").cls is FrequencyBasedExtractor
        assert get_entry("schedule-based").cls is ScheduleBasedExtractor
        assert get_entry("random-baseline").cls is RandomBaselineExtractor
        assert get_entry("wind-production").cls is WindProductionExtractor
        assert get_entry("dispatchable-production").cls is DispatchableProductionExtractor

    def test_registry_name_matches_extractor_name_attribute(self):
        # Offer `source` stamping and report keys rely on this equality.
        for name in ALL_NAMES:
            if name == "multi-tariff":
                continue  # needs a reference series to instantiate
            assert create_extractor(name).name == name

    def test_appliance_level_entries_declare_strict_one_minute_input(self):
        for name in ("frequency-based", "schedule-based"):
            entry = get_entry(name)
            assert entry.input == "total"
            assert entry.strict_grid
        for name in ("basic", "peak-based", "random-baseline"):
            entry = get_entry(name)
            assert entry.input == "metered"
            assert not entry.strict_grid

    def test_rows_cover_every_entry(self):
        rows = registry_rows()
        assert [r["approach"] for r in rows] == list(ALL_NAMES)
        assert all(r["summary"] for r in rows)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_extractor("basic")(PeakBasedExtractor)

    def test_same_class_reregistration_is_idempotent(self):
        # Module reloads re-run decorators; same (name, class) must not trip.
        assert register_extractor("basic")(BasicExtractor) is BasicExtractor


class TestCreateExtractor:
    def test_defaults(self):
        extractor = create_extractor("peak-based")
        assert isinstance(extractor, PeakBasedExtractor)
        assert extractor.params.flexible_share == 0.05

    def test_direct_field(self):
        extractor = create_extractor("basic", period_hours=4)
        assert extractor.period_hours == 4

    def test_routes_into_flexoffer_params(self):
        extractor = create_extractor("peak-based", flexible_share=0.07, slices_max=4)
        assert extractor.params.flexible_share == 0.07
        assert extractor.params.slices_max == 4

    def test_routes_into_matching_config(self):
        extractor = create_extractor(
            "frequency-based", engine="reference", min_detections=3
        )
        assert extractor.matching.engine == "reference"
        assert extractor.min_detections == 3

    def test_routes_into_random_generator_config(self):
        extractor = create_extractor("random-baseline", offers_per_day=2)
        assert extractor.config.offers_per_day == 2

    def test_numbers_coerce_to_timedelta_seconds(self):
        extractor = create_extractor("basic", time_flexibility_max=21600)
        assert extractor.params.time_flexibility_max == timedelta(hours=6)

    def test_lists_coerce_to_tuple_fields(self):
        extractor = create_extractor("basic", energy_min_pct=[0.8, 0.9])
        assert extractor.params.energy_min_pct == (0.8, 0.9)

    def test_explicit_nested_object_still_accepted(self):
        from repro.extraction import FlexOfferParams

        params = FlexOfferParams(flexible_share=0.02)
        extractor = create_extractor("basic", params=params)
        assert extractor.params is params

    def test_invalid_value_wrapped_as_registry_error(self):
        with pytest.raises(RegistryError, match="flexible_share"):
            create_extractor("basic", flexible_share=2.0)

    def test_config_object_plus_flat_override_is_rejected(self):
        # Ambiguous mix: which flexible_share wins?  Must fail loudly, not
        # silently drop the flat override.
        from repro.extraction import FlexOfferParams

        with pytest.raises(RegistryError, match="conflict with the explicit 'params'"):
            create_extractor("basic", params=FlexOfferParams(), flexible_share=0.10)


class TestErrorMessages:
    """Golden error strings: part of the service API, pinned exactly."""

    def test_unknown_name(self):
        with pytest.raises(RegistryError) as excinfo:
            create_extractor("no-such-approach")
        assert str(excinfo.value) == (
            "unknown extractor 'no-such-approach'; available: "
            "basic, dispatchable-production, frequency-based, multi-tariff, "
            "peak-based, random-baseline, schedule-based, wind-production"
        )

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(RegistryError, match="did you mean 'peak-based'"):
            create_extractor("peak-base")

    def test_unknown_parameter(self):
        with pytest.raises(RegistryError) as excinfo:
            create_extractor("random-baseline", flexible_share=0.1)
        assert str(excinfo.value).startswith(
            "extractor 'random-baseline' has no parameter 'flexible_share'; "
            "accepted: config, consumer_id, name, offers_per_day"
        )

    def test_missing_required_parameter(self):
        with pytest.raises(RegistryError) as excinfo:
            create_extractor("multi-tariff")
        assert str(excinfo.value) == (
            "extractor 'multi-tariff' requires parameter(s) 'reference' "
            "(e.g. the multi-tariff approach needs a one-tariff "
            "reference series of the same consumer)"
        )


class TestInputSeriesFor:
    def test_grid_selection_by_registry_entry(self, fleet):
        trace = fleet.traces[0]
        assert (
            input_series_for(create_extractor("frequency-based"), trace)
            is trace.total
        )
        metered = input_series_for(create_extractor("basic"), trace)
        assert metered.axis.resolution == timedelta(minutes=15)

    def test_subclass_inherits_registered_entry(self, fleet):
        # Historical behaviour: isinstance-based routing also covered
        # subclasses of a registered approach.
        from repro.extraction import FrequencyBasedExtractor

        class Tweaked(FrequencyBasedExtractor):
            pass

        trace = fleet.traces[0]
        assert entry_for(Tweaked()).name == "frequency-based"
        assert input_series_for(Tweaked(), trace) is trace.total

    def test_unregistered_extractor_defaults_to_metered(self, fleet):
        class Unregistered:
            pass

        trace = fleet.traces[0]
        assert entry_for(Unregistered()) is None
        series = input_series_for(Unregistered(), trace)
        assert series.axis.resolution == timedelta(minutes=15)

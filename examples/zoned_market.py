"""Zoned multi-market scheduling: one fleet, three zone markets.

Runs the shipped ``examples/specs/zones.json`` spec end to end — simulate
a fleet, extract flex-offers, aggregate them fleet-wide, then shard the
aggregates across three zone markets (explicit household assignment for
``north``/``south``, hash-shard fallback for the rest) and schedule every
zone independently on the incremental-gain engine.  Finishes with the
library-level ``schedule_zones`` driver to show the worker fan-out
producing an identical report.

Usage::

    python examples/zoned_market.py
"""

from __future__ import annotations

from pathlib import Path

from repro.api import FlexibilityService, load_run_spec
from repro.pipeline import FleetPipeline, fleet_zoned_target
from repro.scheduling import ScheduleConfig, schedule_zones
from repro.simulation import generate_fleet

SPEC_PATH = Path(__file__).resolve().parent / "specs" / "zones.json"


def main() -> None:
    # 1. The declarative route: one spec file, one service call.
    spec = load_run_spec(SPEC_PATH)
    print(
        f"spec {spec.name!r}: {spec.scenario.households} households x "
        f"{spec.scenario.days} days, "
        f"{len(spec.pipeline.schedule.zones)} market zones"
    )
    report = FlexibilityService().run(spec)
    for result in report.results:
        schedule = result.schedule
        print(
            f"\n[{result.extractor}] {len(result.offers)} offers -> "
            f"{len(result.aggregates)} aggregates -> "
            f"{int(result.summary['schedule_placed'])} placed across "
            f"{int(result.summary['schedule_zones'])} zones "
            f"(market value {result.summary['schedule_value_eur']:.2f} EUR)"
        )
        for row in schedule.zone_rows():
            print(
                f"  zone {row['zone']:>7s}: {row['placed']:>3} placed, "
                f"target {row['target_kwh']:7.2f} kWh, scheduled "
                f"{row['scheduled_kwh']:6.2f} kWh, improvement "
                f"{row['improvement']:>6s}, value {row['value_eur']:.2f} EUR"
            )

    # 2. The written report (spec + placements + zone structure) is a
    #    lossless JSON artefact — same wire format `repro run --out` writes.
    text = report.to_json()
    print(f"\nreport round-trips through JSON ({len(text)} bytes)")

    # 3. The library route: the same sharding directly on pipeline output,
    #    sequentially and over a 2-process pool — identical by contract.
    fleet = generate_fleet(5, spec.scenario.start, spec.scenario.days, seed=42)
    aggregates = FleetPipeline(chunk_size=4).run(fleet).aggregates
    zoned = fleet_zoned_target(fleet, zones=3)
    config = ScheduleConfig(engine="incremental")
    sequential = schedule_zones(aggregates, zoned, config)
    fanned = schedule_zones(aggregates, zoned, config, workers=2)
    print(
        f"schedule_zones over {len(aggregates)} aggregates: "
        f"cost {sequential.cost:.2f}, "
        f"workers=2 identical to sequential: {fanned == sequential}"
    )


if __name__ == "__main__":
    main()

"""Multi-tariff behavioural study (paper §3.3) on paired simulated data.

The paper could not evaluate its multi-tariff approach for lack of paired
one-tariff/multi-tariff series from the same consumer.  The simulator
provides the pair with ground truth: this example shows the consumer's
behavioural shift (cheap-hour consumption, billing cost), runs the
extractor, and compares what it recovered against the true shifts.

Usage::

    python examples/multitariff_study.py
"""

from __future__ import annotations

from datetime import time

import numpy as np

from repro import MultiTariffExtractor
from repro.timeseries.calendar import DailyWindow
from repro.workloads.scenarios import tariff_study


def night_share(trace, window=DailyWindow(time(22, 0), time(6, 0))) -> float:
    metered = trace.metered()
    night = sum(e for t, e in metered if window.contains(t))
    return night / metered.total()


def main() -> None:
    print("Simulating the same household under flat and night tariffs (28 days) ...")
    study = tariff_study(days=28, seed=9)
    print(f"  tariff: {study.scheme.name} "
          f"(low {study.scheme.low_price} / high {study.scheme.high_price} per kWh, "
          f"cheap 22:00-06:00)")
    print(f"  behavioural ground truth: {len(study.shifts)} appliance runs delayed, "
          f"{study.shifted_energy_kwh:.1f} kWh moved")

    print("\nBehavioural signature:")
    print(f"  night-window consumption share, flat tariff : {night_share(study.single):.1%}")
    print(f"  night-window consumption share, night tariff: {night_share(study.multi):.1%}")
    print(f"  billing cost, flat-tariff behaviour : {study.cost(study.single):7.2f}")
    print(f"  billing cost, night-tariff behaviour: {study.cost(study.multi):7.2f}")

    print("\nRunning the §3.3 extractor (typical-day comparison) ...")
    extractor = MultiTariffExtractor(
        reference=study.single.metered(), scheme=study.scheme
    )
    result = extractor.extract(study.multi.metered(), np.random.default_rng(0))
    recovery = result.extracted_energy / study.shifted_energy_kwh
    print(f"  {len(result.offers)} flex-offers extracted, "
          f"{result.extracted_energy:.1f} kWh "
          f"({recovery:.0%} of the truly shifted energy)")
    print(f"  conservation error: {result.energy_conservation_error():.2e} kWh")

    print("\nSample offers (observed position vs demonstrated shiftability):")
    for offer in result.offers[:5]:
        print(f"    {offer.offer_id:>18s}  window [{offer.earliest_start:%a %H:%M} .. "
              f"{offer.latest_start:%a %H:%M}]  "
              f"{sum(s.midpoint for s in offer.slices):.2f} kWh")


if __name__ == "__main__":
    main()

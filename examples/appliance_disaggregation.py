"""Appliance-level extraction (paper §4): NILM → shortlist → flex-offers.

Simulates a household at 1-minute granularity (the sub-15-minute data §4
requires), disaggregates the total into appliance runs by template matching
against the Table 1 catalogue, derives the §4.1 shortlist (appliance, usage
frequency, time flexibility), mines the §4.2 usage schedules, and emits
per-activation flex-offers — then scores everything against the simulator's
ground truth, which is the evaluation the paper could not run.

Usage::

    python examples/appliance_disaggregation.py
"""

from __future__ import annotations

from collections import Counter
from datetime import timedelta

import numpy as np

from repro import FrequencyBasedExtractor, ScheduleBasedExtractor
from repro.evaluation.groundtruth import match_activations
from repro.timeseries.calendar import DayType
from repro.workloads.scenarios import nilm_household


def main() -> None:
    print("Simulating a 5-appliance household, 14 days at 1-minute resolution ...")
    trace = nilm_household(days=14, seed=3)
    true_counts = Counter(a.appliance for a in trace.activations)
    print(f"  ground truth: {len(trace.activations)} appliance runs "
          f"({dict(true_counts)})")

    print("\n[§4.1 frequency-based extraction]")
    result = FrequencyBasedExtractor().extract(trace.total, np.random.default_rng(0))
    print("  step 1 — appliance shortlist with usage frequencies:")
    for entry in result.extras["shortlist"]:
        print(f"    {entry.describe()}")
    detections = result.extras["detection"].detections
    flex_match = match_activations(
        [d for d in detections if d.flexible],
        [a for a in trace.activations if a.flexible],
        start_tolerance=timedelta(minutes=30),
    )
    print(f"  detection quality (flexible appliances): "
          f"precision {flex_match.precision:.2f}, recall {flex_match.recall:.2f}, "
          f"F1 {flex_match.f1:.2f}")
    print(f"  step 2 — {len(result.offers)} flex-offers, "
          f"{result.extracted_energy:.1f} kWh "
          f"(true flexible energy "
          f"{sum(a.energy_kwh for a in trace.activations if a.flexible):.1f} kWh)")
    for offer in result.offers[:5]:
        print(f"    {offer.appliance:>18s} @ {offer.earliest_start:%a %H:%M}  "
              f"flex {offer.time_flexibility}  "
              f"[{sum(s.energy_min for s in offer.slices):.2f}, "
              f"{sum(s.energy_max for s in offer.slices):.2f}] kWh")

    print("\n[§4.2 schedule-based extraction]")
    result = ScheduleBasedExtractor().extract(trace.total, np.random.default_rng(0))
    print("  mined usage schedules (habit windows):")
    for appliance, mined in result.extras["schedules"].items():
        for dtype in DayType:
            windows = mined.windows[dtype]
            if windows:
                spans = ", ".join(
                    f"{w.start:%H:%M}-{w.end:%H:%M}" for w in windows
                )
                print(f"    {appliance:>18s} {dtype.value:<8s} {spans} "
                      f"(~{mined.expected_starts(dtype):.1f} starts/day)")
    mean_flex = np.mean(
        [o.time_flexibility.total_seconds() / 3600 for o in result.offers]
    ) if result.offers else 0.0
    print(f"  {len(result.offers)} habit-confined flex-offers, "
          f"mean time flexibility {mean_flex:.1f} h "
          f"(manufacturer limits would allow more — habits tighten)")


if __name__ == "__main__":
    main()

"""Quickstart: extract flex-offers from a simulated household week.

Runs the paper's two implemented household-level approaches (basic §3.1 and
peak-based §3.2) on a simulated smart-meter series and prints the resulting
flex-offers with all their attributes.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from datetime import datetime

import numpy as np

from repro import BasicExtractor, FlexOfferParams, PeakBasedExtractor
from repro.simulation import HouseholdConfig, simulate_household


def describe_offer(offer) -> str:
    tmin, tmax = offer.effective_total_bounds()
    return (
        f"  {offer.offer_id:>16s}  start in [{offer.earliest_start:%a %H:%M}, "
        f"{offer.latest_start:%a %H:%M}]  "
        f"profile {len(offer.slices)}x15min  "
        f"energy [{tmin:5.2f}, {tmax:5.2f}] kWh  "
        f"flex {offer.time_flexibility}"
    )


def main() -> None:
    # 1. Simulate one household for a week (stands in for real smart-meter
    #    data; see DESIGN.md for the substitution rationale).
    config = HouseholdConfig(household_id="demo-home", occupants=3)
    trace = simulate_household(
        config, start=datetime(2012, 3, 5), days=7, rng=np.random.default_rng(7)
    )
    metered = trace.metered()  # the 15-minute series a smart meter records
    print(f"Simulated week: {metered.total():.1f} kWh total, "
          f"{metered.total() / 7:.1f} kWh/day, "
          f"true flexible share {trace.flexible_share:.1%}")

    # 2. Extract flexibility with the paper's two household-level approaches.
    params = FlexOfferParams(flexible_share=0.05)  # the Figure 5 setting
    for extractor in (BasicExtractor(params=params), PeakBasedExtractor(params=params)):
        result = extractor.extract(metered, np.random.default_rng(0))
        print(f"\n[{extractor.name}] {len(result.offers)} flex-offers, "
              f"{result.extracted_energy:.2f} kWh extracted "
              f"({result.extracted_share:.1%} of consumption), "
              f"conservation error {result.energy_conservation_error():.2e} kWh")
        for offer in result.offers[:6]:
            print(describe_offer(offer))
        if len(result.offers) > 6:
            print(f"  ... and {len(result.offers) - 6} more")

    # 3. The modified series (flexible energy removed) is what remains as
    #    inflexible demand — the other half of the Figure 2 contract.
    result = PeakBasedExtractor(params=params).extract(metered, np.random.default_rng(0))
    print(f"\nModified series: {result.modified.total():.1f} kWh "
          f"(original {metered.total():.1f} kWh)")


if __name__ == "__main__":
    main()

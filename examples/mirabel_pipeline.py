"""The full MIRABEL scenario (paper §6): extract → aggregate → schedule.

Simulates a fleet of households, extracts peak-based flex-offers from each,
aggregates them (paper [4]), schedules the aggregates against wind-power
surplus (paper [5]), disaggregates the schedule back to households, and
reports how much imbalance the extracted flexibility removes compared with
not shifting demand at all — and with the old random-offer baseline.

Usage::

    python examples/mirabel_pipeline.py [n_households]
"""

from __future__ import annotations

import sys
from datetime import datetime

import numpy as np

from repro import FlexOfferParams, PeakBasedExtractor, RandomBaselineExtractor
from repro.aggregation import aggregate_all, disaggregate_schedule, group_offers
from repro.evaluation.comparison import collect_offers
from repro.scheduling import greedy_schedule, improve_schedule, naive_schedule
from repro.simulation import generate_fleet, simulate_wind_production


def main(n_households: int = 50) -> None:
    print(f"Simulating {n_households} households x 7 days ...")
    fleet = generate_fleet(n_households, datetime(2012, 3, 5), days=7, seed=11)
    axis = fleet.metering_axis()
    consumption = fleet.aggregate_metered()
    print(f"  fleet consumption: {consumption.total():.0f} kWh, "
          f"true flexible share {fleet.flexible_share:.1%}")

    print("\nExtracting flex-offers (peak-based, 5% share) ...")
    params = FlexOfferParams(flexible_share=0.05)
    offers = collect_offers(fleet.traces, PeakBasedExtractor(params=params))
    print(f"  {len(offers)} offers, "
          f"{sum(o.profile_energy_max for o in offers):.1f} kWh max flexible energy")

    print("\nAggregating (grid grouping on earliest start x flexibility) ...")
    aggregates = aggregate_all(group_offers(offers))
    print(f"  {len(offers)} offers -> {len(aggregates)} aggregated offers")

    print("\nScheduling against wind surplus ...")
    wind = simulate_wind_production(axis, np.random.default_rng(2))
    total_flex = sum(o.profile_energy_max for o in offers)
    target = wind * (total_flex / wind.total())

    naive = naive_schedule(offers, target)
    greedy = greedy_schedule([a.offer for a in aggregates], target)
    improved = improve_schedule(greedy, np.random.default_rng(3), iterations=500)
    random_offers = collect_offers(fleet.traces, RandomBaselineExtractor())
    random_plan = greedy_schedule(random_offers, target)

    print(f"  squared imbalance, demand left where it was : {naive.cost:10.2f}")
    print(f"  squared imbalance, greedy on aggregates     : {greedy.cost:10.2f}"
          f"  ({naive.cost / greedy.cost:.2f}x better)")
    print(f"  squared imbalance, + stochastic improvement : {improved.cost:10.2f}"
          f"  ({naive.cost / improved.cost:.2f}x better)")
    print(f"  (random-offer baseline, for reference       : {random_plan.cost:10.2f})")

    print("\nDisaggregating the schedule back to households ...")
    by_id = {a.offer.offer_id: a for a in aggregates}
    member_schedules = []
    for sched in improved.schedules:
        member_schedules.extend(disaggregate_schedule(by_id[sched.offer.offer_id], sched))
    print(f"  {len(improved.schedules)} aggregate schedules -> "
          f"{len(member_schedules)} household schedules "
          f"({sum(s.total_energy for s in member_schedules):.1f} kWh assigned)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50)

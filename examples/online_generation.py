"""Real-time flex-offer generation (paper §6's closing vision).

Trains an online generator on two weeks of household history, then shows
both operating modes:

* day-ahead: offers for tomorrow's habitual appliance runs, issued before
  the day begins (what MIRABEL's scheduler consumes);
* streaming: a live 1-minute feed in which appliance onsets are detected
  and flex-offers emitted while the cycle is still running.

Usage::

    python examples/online_generation.py
"""

from __future__ import annotations

from datetime import date, timedelta

import numpy as np

from repro.extraction.online import OnlineFlexOfferGenerator
from repro.simulation import HouseholdConfig, simulate_household
from repro.workloads.scenarios import SCENARIO_START, nilm_household


def main() -> None:
    print("Training on 14 days of household history (1-minute data) ...")
    history = nilm_household(days=14, seed=3)
    generator = OnlineFlexOfferGenerator.train(history.total)
    print("  learned flexible-appliance model:")
    for entry in generator.table.flexible_entries():
        print(f"    {entry.describe()}")

    print("\n[day-ahead mode] offers for Monday 2012-03-19, issued the evening before:")
    offers = generator.anticipate(date(2012, 3, 19))
    for offer in offers:
        print(f"    {offer.appliance:>18s}  start window "
              f"[{offer.earliest_start:%H:%M} .. {offer.latest_start:%H:%M}]  "
              f"energy [{offer.profile_energy_min:.2f}, "
              f"{offer.profile_energy_max:.2f}] kWh  "
              f"(created {offer.creation_time:%m-%d %H:%M})")

    print("\n[streaming mode] feeding a live day the generator has never seen ...")
    config = HouseholdConfig(
        household_id="live-home",
        appliances=("washing-machine-y", "dishwasher-z", "vacuum-robot-x"),
        noise_std_kw=0.0,
    )
    live = simulate_household(
        config, SCENARIO_START + timedelta(days=21), 1, np.random.default_rng(99)
    )
    truth = [a for a in live.activations if a.flexible]
    print(f"  ground truth today: "
          f"{[(a.appliance, a.start.strftime('%H:%M')) for a in truth]}")

    generator.reset_stream()
    start = live.axis.start
    for minute, value in enumerate(live.total.values):
        when = start + timedelta(minutes=minute)
        for offer in generator.observe(when, float(value)):
            running = [a.appliance for a in truth if a.start <= when <= a.end]
            print(f"    {when:%H:%M}  emitted {offer.appliance:>18s} "
                  f"flex-offer ({offer.profile_energy_min:.2f}-"
                  f"{offer.profile_energy_max:.2f} kWh)"
                  f"   [actually running: {', '.join(running) or 'nothing'}]")


if __name__ == "__main__":
    main()

"""Regenerate the paper's figures as ASCII plots in the terminal.

Thin shim: the renderers live in the installable :mod:`repro.examples`
package (so ``repro figures`` works from a wheel); this script keeps the
historical ``python examples/paper_figures.py`` entry point working from a
repository checkout.
"""

from __future__ import annotations

from repro.examples.paper_figures import (  # noqa: F401  (re-exported API)
    bar,
    show_figure1,
    show_figure4,
    show_figure5,
)

if __name__ == "__main__":
    show_figure1()
    show_figure4()
    show_figure5()
